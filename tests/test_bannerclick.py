"""Tests for the BannerClick detector and cookiewall classifier."""

import pytest

from repro.bannerclick import (
    BannerClick,
    accept_banner,
    find_currency_amounts,
    has_cookiewall_words,
    reject_banner,
)
from repro.bannerclick.corpus import has_accept_words, has_banner_words
from repro.browser import Browser
from repro.errors import MeasurementError
from repro.netsim import Network, StaticServer
from repro.vantage import VANTAGE_POINTS
from repro.webgen import BannerKind


def page_for(html):
    net = Network()
    net.register("site.de", StaticServer(html))
    browser = Browser(net, VANTAGE_POINTS["DE"])
    return browser, browser.visit("site.de")


WALL_TEXT = (
    "Weiterlesen mit Werbung – oder buchen Sie das Pur-Abo "
    "für nur 2,99 € im Monat."
)

REGULAR_BANNER = (
    '<div class="cookie-banner" role="dialog">'
    "<p>Wir verwenden Cookies für Inhalte und Anzeigen.</p>"
    '<button data-action="accept" data-cookie="cmp_consent">Alle akzeptieren</button>'
    '<button data-action="reject" data-cookie="cmp_consent">Ablehnen</button>'
    "</div>"
)

WALL_MAIN = (
    f'<div id="cw-wall" class="cw-overlay"><p>{WALL_TEXT}</p>'
    '<button data-action="accept" data-cookie="cw_consent">Mit Werbung weiterlesen</button>'
    '<button data-action="subscribe">Jetzt Abo abschließen</button></div>'
)


class TestCorpus:
    @pytest.mark.parametrize(
        "text",
        [
            "buchen Sie das Pur-Abo jetzt",
            "als Abonnent lesen",
            "attiva l'abbonamento",
            "devenez abonné",
            "neem een abonnement",
            "enjoy an ad-free experience",
            "subscribe today",
            "subscribing is easy",
        ],
    )
    def test_wall_words_match(self, text):
        assert has_cookiewall_words(text)

    @pytest.mark.parametrize(
        "text",
        [
            "read more about us",         # "abo" inside "about" must not hit
            "above the fold",
            "we use cookies",
            "laboratory results",
        ],
    )
    def test_wall_words_no_false_hit(self, text):
        assert not has_cookiewall_words(text)

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("nur 2,99 € im Monat", 1),
            ("pay $3.99 or 3.99$ or 3.99 $", 3),
            ("CHF 2.90 pro Monat", 1),
            ("AU$4.90 per month", 1),
            ("EUR 3.99 jährlich", 1),
            ("£2.60/month", 1),
            ("kostet nichts", 0),
            ("the $ sign alone", 0),
            ("year 2023 without currency", 0),
        ],
    )
    def test_currency_combinations(self, text, expected):
        assert len(find_currency_amounts(text)) == expected

    def test_accept_and_banner_words(self):
        assert has_accept_words("Alle akzeptieren")
        assert has_accept_words("Accept all")
        assert has_accept_words("Godkänn alla")
        assert has_banner_words("Wir verwenden Cookies")
        assert has_banner_words("continue with ads and tracking")
        assert not has_banner_words("an article about sports")


class TestDetectionMainDOM:
    def test_regular_banner_detected(self):
        _, page = page_for(REGULAR_BANNER + "<p>article</p>")
        detection = BannerClick().detect(page)
        assert detection.found
        assert detection.location == "main"
        assert not detection.is_cookiewall
        assert detection.accept_element is not None
        assert detection.has_reject

    def test_wall_detected_and_classified(self):
        _, page = page_for(WALL_MAIN)
        detection = BannerClick().detect(page)
        assert detection.found
        assert detection.is_cookiewall
        assert detection.wall_word_match
        assert detection.currency_matches
        assert not detection.has_reject

    def test_no_banner_page(self):
        _, page = page_for("<main><p>just an article</p></main>")
        detection = BannerClick().detect(page)
        assert not detection.found
        assert not detection.is_cookiewall

    def test_hidden_banner_ignored(self):
        html = REGULAR_BANNER.replace(
            'class="cookie-banner"', 'class="cookie-banner" style="display:none"'
        )
        _, page = page_for(html)
        assert not BannerClick().detect(page).found

    def test_currency_only_wall(self):
        # Spanish-style wall: no corpus subscription word, currency only.
        html = (
            '<div class="cw-overlay"><p>Sigue leyendo con publicidad o '
            "consigue la web sin publicidad por 2,99 € al mes.</p>"
            '<button data-action="accept">Aceptar y continuar</button></div>'
        )
        _, page = page_for(html)
        detection = BannerClick().detect(page)
        assert detection.is_cookiewall
        assert not detection.wall_word_match
        assert detection.currency_matches


class TestDetectionIframe:
    HTML = (
        '<iframe id="cw-frame" data-banner="1" srcdoc="'
        "&lt;div class='cw-content'&gt;&lt;p&gt;Weiterlesen mit Werbung oder "
        "Pur-Abo für 2,99 € im Monat&lt;/p&gt;"
        "&lt;button data-action='accept' data-cookie='cw_consent'&gt;"
        "Mit Werbung weiterlesen&lt;/button&gt;&lt;/div&gt;"
        '"></iframe>'
    )

    def test_wall_in_iframe_found(self):
        _, page = page_for(self.HTML)
        detection = BannerClick().detect(page)
        assert detection.found
        assert detection.location == "iframe"
        assert detection.is_cookiewall

    def test_iframe_scan_can_be_disabled(self):
        _, page = page_for(self.HTML)
        detection = BannerClick(iframes=False).detect(page)
        assert not detection.found


class TestDetectionShadowDOM:
    def wall_in_shadow(self, mode):
        return (
            f'<div id="cw-host" data-banner="1"><template shadowrootmode="{mode}">'
            f'<div class="cw-content"><p>{WALL_TEXT}</p>'
            '<button data-action="accept" data-cookie="cw_consent">'
            "Mit Werbung weiterlesen</button></div></template></div>"
        )

    def test_open_shadow_wall_found(self):
        _, page = page_for(self.wall_in_shadow("open"))
        detection = BannerClick().detect(page)
        assert detection.found
        assert detection.location == "shadow-open"
        assert detection.is_cookiewall
        assert detection.shadow_host is not None

    def test_closed_shadow_wall_found(self):
        _, page = page_for(self.wall_in_shadow("closed"))
        detection = BannerClick().detect(page)
        assert detection.location == "shadow-closed"
        assert detection.is_cookiewall

    def test_shadow_scan_can_be_disabled(self):
        _, page = page_for(self.wall_in_shadow("open"))
        assert not BannerClick(shadow_dom=False).detect(page).found

    def test_closed_support_can_be_disabled(self):
        _, page = page_for(self.wall_in_shadow("closed"))
        detection = BannerClick(closed_shadow=False).detect(page)
        assert not detection.found
        # Open roots still work with closed support off.
        _, page = page_for(self.wall_in_shadow("open"))
        assert BannerClick(closed_shadow=False).detect(page).found

    def test_clone_workaround_cleans_up(self):
        _, page = page_for(self.wall_in_shadow("open"))
        body = page.document.body
        before = len(body.children)
        BannerClick().detect(page)
        assert len(body.children) == before

    def test_mapped_button_is_in_live_shadow_tree(self):
        browser, page = page_for(self.wall_in_shadow("open"))
        detection = BannerClick().detect(page)
        host = page.document.get_element_by_id("cw-host")
        shadow = host.attached_shadow_root
        assert detection.accept_element.owner_document is page.document
        node = detection.accept_element
        while node.parent is not None:
            node = node.parent
        assert node is shadow


class TestClassifierAblations:
    def test_words_only(self):
        _, page = page_for(WALL_MAIN)
        detection = BannerClick(currency_patterns=False).detect(page)
        assert detection.is_cookiewall          # subscription words suffice
        assert detection.currency_matches == []

    def test_currency_only(self):
        _, page = page_for(WALL_MAIN)
        detection = BannerClick(subscription_words=False).detect(page)
        assert detection.is_cookiewall          # currency pattern suffices
        assert not detection.wall_word_match

    def test_neither_classifier(self):
        _, page = page_for(WALL_MAIN)
        detection = BannerClick(
            subscription_words=False, currency_patterns=False
        ).detect(page)
        assert detection.found
        assert not detection.is_cookiewall


class TestInteraction:
    def test_accept_clicks_and_sets_cookie(self):
        browser, page = page_for(REGULAR_BANNER)
        detection = BannerClick().detect(page)
        outcome = accept_banner(browser, page, detection)
        assert outcome.cookie == ("cmp_consent", "accept")
        assert browser.jar.get("cmp_consent", "site.de").value == "accept"

    def test_reject_clicks(self):
        browser, page = page_for(REGULAR_BANNER)
        detection = BannerClick().detect(page)
        outcome = reject_banner(browser, page, detection)
        assert outcome.cookie == ("cmp_consent", "reject")

    def test_reject_on_wall_raises(self):
        browser, page = page_for(WALL_MAIN)
        detection = BannerClick().detect(page)
        with pytest.raises(MeasurementError):
            reject_banner(browser, page, detection)

    def test_accept_without_detection_raises(self):
        browser, page = page_for("<p>nothing</p>")
        detection = BannerClick().detect(page)
        with pytest.raises(MeasurementError):
            accept_banner(browser, page, detection)


class TestAgainstGeneratedWorld:
    def test_full_recall_on_generated_walls(self, medium_world):
        bc = BannerClick()
        for domain in sorted(medium_world.wall_domains):
            spec = medium_world.sites[domain]
            browser = medium_world.browser("DE")
            page = browser.visit(domain)
            detection = bc.detect(page)
            assert detection.is_cookiewall, (domain, spec.wall.placement)

    def test_bait_sites_are_false_positives(self, medium_world):
        bc = BannerClick()
        for domain in sorted(medium_world.bait_domains):
            browser = medium_world.browser("DE")
            page = browser.visit(domain)
            detection = bc.detect(page)
            assert detection.is_cookiewall  # intended FP
            assert medium_world.sites[domain].banner is BannerKind.BAIT

    def test_location_matches_placement(self, medium_world):
        bc = BannerClick()
        for domain in sorted(medium_world.wall_domains):
            spec = medium_world.sites[domain]
            browser = medium_world.browser("DE")
            page = browser.visit(domain)
            detection = bc.detect(page)
            expected = spec.wall.placement
            if expected in ("shadow-open", "shadow-closed"):
                assert detection.location == expected
            elif expected == "iframe":
                assert detection.location == "iframe"
            else:
                assert detection.location == "main"

    def test_regular_sites_not_walls(self, medium_world):
        bc = BannerClick()
        regular = [
            d for d in medium_world.crawl_targets
            if medium_world.sites[d].banner is BannerKind.REGULAR
        ][:40]
        for domain in regular:
            browser = medium_world.browser("DE")
            page = browser.visit(domain)
            detection = bc.detect(page)
            assert not detection.is_cookiewall, domain
