"""Integration tests for the network simulator and browser."""


import pytest

from repro.browser import Browser, By, WebDriver
from repro.browser.effects import encode_effects
from repro.errors import (
    ClosedShadowRootError,
    ConnectionRefused,
    DNSError,
    ElementNotInteractableError,
    NavigationError,
    NoSuchElementError,
)
from repro.httpkit import Request
from repro.netsim import Network, OriginServer, StaticServer, VisitorContext
from repro.vantage import VANTAGE_POINTS


DE = VANTAGE_POINTS["DE"]


class EffectScriptServer(OriginServer):
    """Serves a DOM-effect payload for any path."""

    def __init__(self, effects):
        self.effects = effects
        self.requests_seen = 0

    def handle(self, request, visitor):
        self.requests_seen += 1
        return self.effects_response(request)

    def effects_response(self, request):
        return self.effects_(request)

    def effects_(self, request):
        return OriginServer.effects(request, encode_effects(self.effects))


class CookieSettingServer(OriginServer):
    def handle(self, request, visitor):
        response = OriginServer.pixel(request)
        response.add_cookie(f"uid=visitor{visitor.visit_id}; Max-Age=86400")
        return response


def make_network():
    network = Network()
    return network


class TestNetwork:
    def test_register_and_fetch(self):
        net = make_network()
        net.register("example.de", StaticServer("<p>hi</p>"))
        req = Request(url="https://www.example.de/")
        resp = net.fetch(req, VisitorContext(vp=DE))
        assert resp.ok and "hi" in resp.body

    def test_dns_error_for_unknown(self):
        net = make_network()
        with pytest.raises(DNSError):
            net.fetch(Request(url="https://nowhere.zz/"), VisitorContext(vp=DE))

    def test_unreachable(self):
        net = make_network()
        net.mark_unreachable("dead.de")
        with pytest.raises(ConnectionRefused):
            net.fetch(Request(url="https://dead.de/"), VisitorContext(vp=DE))

    def test_exact_host_overrides_domain(self):
        net = make_network()
        net.register("example.de", StaticServer("domain"))
        net.register_host("special.example.de", StaticServer("host"))
        resp = net.fetch(
            Request(url="https://special.example.de/"), VisitorContext(vp=DE)
        )
        assert resp.body == "host"

    def test_knows(self):
        net = make_network()
        net.register("example.de", StaticServer("x"))
        assert net.knows("www.example.de")
        assert not net.knows("other.net")

    def test_request_count(self):
        net = make_network()
        net.register("example.de", StaticServer("x"))
        net.fetch(Request(url="https://example.de/"), VisitorContext(vp=DE))
        assert net.request_count == 1


class TestBrowserNavigation:
    def test_visit_parses_document(self):
        net = make_network()
        net.register("example.de", StaticServer("<h1>Welcome</h1>"))
        browser = Browser(net, DE)
        page = browser.visit("example.de")
        assert "Welcome" in page.visible_text()
        assert page.url.host == "example.de"

    def test_visit_unknown_raises_navigation_error(self):
        browser = Browser(make_network(), DE)
        with pytest.raises(NavigationError):
            browser.visit("missing.zz")

    def test_document_cookies_stored(self):
        net = make_network()
        net.register(
            "example.de",
            StaticServer("<p>x</p>", set_cookies=["session=abc; Max-Age=60"]),
        )
        browser = Browser(net, DE)
        browser.visit("example.de")
        assert browser.jar.has("session", "example.de")

    def test_subresource_cookies_and_third_party(self):
        net = make_network()
        net.register(
            "example.de",
            StaticServer('<img src="https://tracker.net/p.gif"><p>x</p>'),
        )
        net.register("tracker.net", CookieSettingServer())
        browser = Browser(net, DE)
        page = browser.visit("example.de")
        assert browser.jar.has("uid", "tracker.net")
        first, third = browser.jar.partition_by_party("example.de")
        assert len(third) == 1
        assert len(page.requests) == 2

    def test_script_effects_append_html(self):
        net = make_network()
        net.register(
            "example.de",
            StaticServer('<script src="https://cmp.net/loader.js"></script><p>x</p>'),
        )
        net.register(
            "cmp.net",
            EffectScriptServer(
                [{"op": "append-html", "html": '<div id="wall">Pay or accept</div>'}]
            ),
        )
        browser = Browser(net, DE)
        page = browser.visit("example.de")
        assert page.document.get_element_by_id("wall") is not None

    def test_effects_can_set_first_party_cookie(self):
        net = make_network()
        net.register(
            "example.de",
            StaticServer('<script src="https://cmp.net/l.js"></script>'),
        )
        net.register(
            "cmp.net",
            EffectScriptServer(
                [{"op": "set-page-cookie", "name": "consent", "value": "shown",
                  "scope": "site"}]
            ),
        )
        browser = Browser(net, DE)
        browser.visit("example.de")
        cookie = browser.jar.get("consent", "example.de")
        assert cookie is not None and cookie.value == "shown"

    def test_effect_loaded_resources_fetch(self):
        net = make_network()
        net.register(
            "example.de",
            StaticServer('<script src="https://adnet.com/l.js"></script>'),
        )
        net.register(
            "adnet.com",
            EffectScriptServer(
                [{"op": "load-resources",
                  "urls": ["https://sync1.net/p.gif", "https://sync2.net/p.gif"]}]
            ),
        )
        net.register("sync1.net", CookieSettingServer())
        net.register("sync2.net", CookieSettingServer())
        browser = Browser(net, DE)
        browser.visit("example.de")
        assert browser.jar.has("uid", "sync1.net")
        assert browser.jar.has("uid", "sync2.net")

    def test_remote_iframe_loads_and_nests(self):
        net = make_network()
        net.register(
            "example.de",
            StaticServer('<iframe src="https://frames.net/banner"></iframe>'),
        )
        net.register(
            "frames.net",
            StaticServer('<p>frame body</p><img src="https://tracker.net/i.gif">'),
        )
        net.register("tracker.net", CookieSettingServer())
        browser = Browser(net, DE)
        page = browser.visit("example.de")
        assert "frame body" in page.visible_text()
        assert browser.jar.has("uid", "tracker.net")

    def test_failed_subresource_recorded(self):
        net = make_network()
        net.register(
            "example.de",
            StaticServer('<img src="https://gone.zz/x.gif">'),
        )
        browser = Browser(net, DE)
        page = browser.visit("example.de")
        assert len(page.failed_requests) == 1

    def test_visit_ids_increment(self):
        net = make_network()
        net.register("example.de", CookieSettingServer())

        class HtmlCookieServer(OriginServer):
            def handle(self, request, visitor):
                resp = OriginServer.html(request, "<p>x</p>")
                resp.add_cookie(f"v=visit{visitor.visit_id}")
                return resp

        net.register("seq.de", HtmlCookieServer())
        browser = Browser(net, DE)
        browser.visit("seq.de")
        first = browser.jar.get("v", "seq.de").value
        browser.visit("seq.de")
        second = browser.jar.get("v", "seq.de").value
        assert first != second

    def test_clear_site_data(self):
        net = make_network()
        net.register(
            "example.de",
            StaticServer("<p>x</p>", set_cookies=["a=1; Max-Age=60"]),
        )
        browser = Browser(net, DE)
        browser.visit("example.de")
        assert browser.clear_site_data("example.de") == 1
        assert len(browser.jar) == 0


class TestClickSemantics:
    BANNER_HTML = (
        '<div data-banner="1" id="b">'
        '<p>We use cookies</p>'
        '<button id="acc" data-action="accept" data-cookie="consent">OK</button>'
        "</div><p>content</p>"
    )

    def make_browser(self, html=None):
        net = make_network()
        net.register("example.de", StaticServer(html or self.BANNER_HTML))
        return Browser(net, DE)

    def test_accept_sets_cookie_and_removes_banner(self):
        browser = self.make_browser()
        page = browser.visit("example.de")
        button = page.document.get_element_by_id("acc")
        outcome = browser.click(page, button)
        assert outcome.action == "accept"
        assert outcome.removed_banner
        assert browser.jar.get("consent", "example.de").value == "accept"
        assert page.document.get_element_by_id("b") is None

    def test_click_hidden_raises(self):
        browser = self.make_browser(
            '<button id="x" style="display:none" data-action="accept">A</button>'
        )
        page = browser.visit("example.de")
        with pytest.raises(ElementNotInteractableError):
            browser.click(page, page.document.get_element_by_id("x"))

    def test_click_banner_in_iframe_removes_host(self):
        html = (
            '<iframe data-banner="1" id="host" '
            'srcdoc="&lt;button id=in data-action=accept&gt;OK&lt;/button&gt;">'
            "</iframe>"
        )
        browser = self.make_browser(html)
        page = browser.visit("example.de")
        iframe = page.document.get_element_by_id("host")
        button = iframe.content_document.get_element_by_id("in")
        outcome = browser.click(page, button)
        assert outcome.removed_banner
        assert page.document.get_element_by_id("host") is None

    def test_click_banner_in_shadow_removes_host(self):
        html = (
            '<div data-banner="1" id="host"><template shadowrootmode="open">'
            '<button id="in" data-action="accept">OK</button>'
            "</template></div>"
        )
        browser = self.make_browser(html)
        page = browser.visit("example.de")
        host = page.document.get_element_by_id("host")
        button = host.shadow_root.children[0]
        outcome = browser.click(page, button)
        assert outcome.removed_banner
        assert page.document.get_element_by_id("host") is None

    def test_subscribe_click(self):
        browser = self.make_browser(
            '<button id="s" data-action="subscribe" '
            'data-href="https://smp.net/checkout">Subscribe</button>'
        )
        page = browser.visit("example.de")
        outcome = browser.click(page, page.document.get_element_by_id("s"))
        assert outcome.navigate_to == "https://smp.net/checkout"
        assert page.flags["subscribe_clicked"]


class TestWebDriver:
    HTML = (
        '<div id="host"><template shadowrootmode="open">'
        '<button id="shadow-btn">Hidden</button></template></div>'
        '<div id="closed-host"><template shadowrootmode="closed">'
        '<button id="closed-btn">Secret</button></template></div>'
        '<iframe id="fr" srcdoc="&lt;button id=fb&gt;Frame&lt;/button&gt;"></iframe>'
        '<button id="top-btn">Top</button>'
    )

    def make_driver(self):
        net = make_network()
        net.register("example.de", StaticServer(self.HTML))
        browser = Browser(net, DE)
        page = browser.visit("example.de")
        return WebDriver(browser, page)

    def test_css_lookup_sees_only_main_context(self):
        driver = self.make_driver()
        buttons = driver.find_elements(By.CSS_SELECTOR, "button")
        assert [b.get_attribute("id") for b in buttons] == ["top-btn"]

    def test_xpath_lookup(self):
        driver = self.make_driver()
        assert driver.find_element(By.XPATH, "//button[@id='top-btn']")

    def test_missing_element_raises(self):
        driver = self.make_driver()
        with pytest.raises(NoSuchElementError):
            driver.find_element(By.CSS_SELECTOR, "#nope")

    def test_open_shadow_root_accessible(self):
        driver = self.make_driver()
        host = driver.find_element(By.ID, "host")
        inner = host.shadow_root.find_elements(By.CSS_SELECTOR, "button")
        assert [b.get_attribute("id") for b in inner] == ["shadow-btn"]

    def test_closed_shadow_root_raises(self):
        driver = self.make_driver()
        host = driver.find_element(By.ID, "closed-host")
        with pytest.raises(ClosedShadowRootError):
            _ = host.shadow_root

    def test_pierce_reaches_closed_root(self):
        driver = self.make_driver()
        host = driver.find_element(By.ID, "closed-host")
        ctx = driver.pierce_shadow_root(host)
        inner = ctx.find_elements(By.CSS_SELECTOR, "button")
        assert [b.get_attribute("id") for b in inner] == ["closed-btn"]

    def test_shadow_host_scans(self):
        driver = self.make_driver()
        assert len(driver.elements_with_shadow_root()) == 1
        assert len(driver.elements_with_any_shadow_root()) == 2

    def test_frame_switching(self):
        driver = self.make_driver()
        frame = driver.iframe_elements()[0]
        driver.switch_to_frame(frame)
        assert driver.find_element(By.ID, "fb").text == "Frame"
        driver.switch_to_default_content()
        assert driver.find_elements(By.ID, "fb") == []

    def test_clone_workaround_primitive(self):
        driver = self.make_driver()
        host = driver.find_element(By.ID, "closed-host")
        shadow = driver.pierce_shadow_root(host)
        body = driver.page.document.body
        for child in shadow.root.children:
            driver.execute_append_clone(child, body)
        found = driver.find_elements(By.CSS_SELECTOR, "#closed-btn")
        assert len(found) == 1
