"""Tests for the HTML tokenizer, parser, and Soup API."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dom import Document, Element, to_html
from repro.soup import Soup, make_soup, parse_document, parse_fragment
from repro.soup.tokenizer import decode_entities, tokenize, StartTag, TextToken


class TestTokenizer:
    def test_simple_tags(self):
        tokens = list(tokenize("<div><p>x</p></div>"))
        kinds = [type(t).__name__ for t in tokens]
        assert kinds == ["StartTag", "StartTag", "TextToken", "EndTag", "EndTag"]

    def test_attributes_quoted_and_bare(self):
        (tag,) = list(tokenize('<div id="a" class=foo data-x hidden>'))[:1]
        assert isinstance(tag, StartTag)
        assert tag.attrs == {"id": "a", "class": "foo", "data-x": "", "hidden": ""}

    def test_single_quotes(self):
        (tag,) = list(tokenize("<a href='/x y'>"))[:1]
        assert tag.attrs["href"] == "/x y"

    def test_self_closing(self):
        (tag,) = list(tokenize("<br/>"))[:1]
        assert tag.self_closing

    def test_comment(self):
        tokens = list(tokenize("a<!-- hidden -->b"))
        assert tokens[1].data == " hidden "

    def test_doctype(self):
        tokens = list(tokenize("<!DOCTYPE html><p>x</p>"))
        assert type(tokens[0]).__name__ == "DoctypeToken"

    def test_script_is_raw_text(self):
        tokens = list(tokenize("<script>if (a<b) {x}</script>"))
        assert isinstance(tokens[1], TextToken)
        assert tokens[1].data == "if (a<b) {x}"

    def test_stray_lt_is_text(self):
        tokens = list(tokenize("1 < 2"))
        text = "".join(t.data for t in tokens if isinstance(t, TextToken))
        assert text == "1 < 2"

    def test_unterminated_tag(self):
        tokens = list(tokenize("<div id=x"))
        assert isinstance(tokens[0], StartTag)

    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("&amp;", "&"),
            ("&lt;b&gt;", "<b>"),
            ("&euro;3.99", "€3.99"),
            ("&#8364;", "€"),
            ("&#x20AC;", "€"),
            ("&uuml;ber", "über"),
            ("&unknown;", "&unknown;"),
            ("no entities", "no entities"),
            ("&", "&"),
        ],
    )
    def test_entities(self, raw, expected):
        assert decode_entities(raw) == expected


class TestParser:
    def test_implicit_structure(self):
        doc = parse_document("<p>hello</p>")
        assert doc.body is not None
        assert doc.head is not None
        assert doc.body.children[0].tag == "p"

    def test_explicit_structure(self):
        doc = parse_document(
            "<html><head><title>T</title></head><body><p>x</p></body></html>"
        )
        assert doc.title == "T"
        assert doc.body.children[0].tag == "p"

    def test_head_elements_routed_to_head(self):
        doc = parse_document('<title>T</title><meta charset="utf-8"><p>b</p>')
        head_tags = [e.tag for e in doc.head.elements()]
        assert "title" in head_tags and "meta" in head_tags
        assert [e.tag for e in doc.body.elements()] == ["p"]

    def test_void_elements_have_no_children(self):
        doc = parse_document("<div><br><img src=x><p>after</p></div>")
        div = doc.body.children[0]
        tags = [c.tag for c in div.children if isinstance(c, Element)]
        assert tags == ["br", "img", "p"]

    def test_misnested_end_tag_recovery(self):
        doc = parse_document("<div><b>x</div></b><p>y</p>")
        assert doc.body is not None
        assert "y" in doc.body.text_content()

    def test_li_auto_close(self):
        doc = parse_document("<ul><li>a<li>b<li>c</ul>")
        ul = doc.body.children[0]
        lis = [c for c in ul.children if isinstance(c, Element)]
        assert len(lis) == 3

    def test_declarative_shadow_open(self):
        doc = parse_document(
            '<div id="host"><template shadowrootmode="open"><p>s</p></template></div>'
        )
        host = doc.get_element_by_id("host")
        assert host.shadow_root is not None
        assert host.shadow_root.children[0].tag == "p"

    def test_declarative_shadow_closed(self):
        doc = parse_document(
            '<div id="host"><template shadowrootmode="closed"><p>s</p></template></div>'
        )
        host = doc.get_element_by_id("host")
        assert host.shadow_root is None
        assert host.attached_shadow_root.mode == "closed"

    def test_plain_template_is_element(self):
        doc = parse_document("<div><template><p>x</p></template></div>")
        div = doc.body.children[0]
        assert div.children[0].tag == "template"

    def test_iframe_srcdoc(self):
        doc = parse_document(
            '<iframe srcdoc="&lt;p&gt;inner text&lt;/p&gt;"></iframe>'
        )
        iframe = next(e for e in doc.body.elements() if e.tag == "iframe")
        assert iframe.content_document is not None
        assert iframe.content_document.body.text_content() == "inner text"

    def test_fragment(self):
        nodes = parse_fragment("<p>a</p><p>b</p>")
        assert [n.tag for n in nodes] == ["p", "p"]

    def test_round_trip_with_shadow_and_iframe(self):
        html = (
            '<div id="host"><template shadowrootmode="closed">'
            "<span>wall €3.99</span></template></div>"
            '<iframe srcdoc="&lt;p&gt;framed&lt;/p&gt;"></iframe>'
        )
        doc = parse_document(html)
        doc2 = parse_document(to_html(doc))
        host = doc2.get_element_by_id("host")
        assert host.attached_shadow_root is not None
        assert "wall €3.99" in host.text_content(pierce=True)
        iframe = next(e for e in doc2.body.elements() if e.tag == "iframe")
        assert iframe.content_document.body.text_content() == "framed"


class TestSoupAPI:
    SOUP = make_soup(
        """
        <div class="banner" id="b1">
          <p>We use cookies. <a href="/privacy">Privacy</a></p>
          <button class="accept">Accept</button>
          <template shadowrootmode="open"><b>from shadow</b></template>
        </div>
        <iframe srcdoc="&lt;button class='accept'&gt;frame accept&lt;/button&gt;"></iframe>
        """
    )

    def test_find_by_name(self):
        assert self.SOUP.find("button").get_text() == "Accept"

    def test_find_all_pierces_frames_by_default(self):
        buttons = self.SOUP.find_all("button")
        assert len(buttons) == 2

    def test_find_all_without_pierce(self):
        assert len(self.SOUP.find_all("button", pierce=False)) == 1

    def test_find_by_attrs(self):
        assert self.SOUP.find("div", attrs={"id": "b1"}) is not None
        assert self.SOUP.find("div", attrs={"id": "zz"}) is None

    def test_find_by_attr_presence(self):
        assert self.SOUP.find("a", attrs={"href": True}) is not None

    def test_find_by_callable_attr(self):
        found = self.SOUP.find("a", attrs={"href": lambda v: v and v.startswith("/")})
        assert found is not None

    def test_find_by_class(self):
        assert self.SOUP.find(class_="accept") is not None

    def test_find_by_string(self):
        assert self.SOUP.find("p", string="cookies") is not None
        assert self.SOUP.find("p", string="missing") is None

    def test_find_by_string_callable(self):
        found = self.SOUP.find("button", string=lambda t: "accept" in t.lower())
        assert found is not None

    def test_get_text_pierces_everything(self):
        text = self.SOUP.get_text()
        assert "from shadow" in text
        assert "frame accept" in text

    def test_select_css(self):
        assert len(self.SOUP.select("div.banner > button")) == 1

    def test_attribute_access(self):
        link = self.SOUP.find("a")
        assert link["href"] == "/privacy"
        assert link.get("missing") is None
        with pytest.raises(KeyError):
            link["missing"]

    def test_limit(self):
        assert len(self.SOUP.find_all("button", limit=1)) == 1

    def test_make_soup_coercions(self):
        assert isinstance(make_soup("<p>x</p>"), Soup)
        assert isinstance(make_soup(self.SOUP), Soup)
        assert isinstance(make_soup(Document()), Soup)
        with pytest.raises(TypeError):
            make_soup(42)


class TestParserProperties:
    @given(
        text=st.text(
            alphabet=st.characters(blacklist_characters="<>&", min_codepoint=32, max_codepoint=382),
            min_size=1,
            max_size=40,
        )
    )
    def test_text_survives_parse(self, text):
        doc = parse_document(f"<p>{text}</p>")
        body_text = doc.body.text_content()
        # Whitespace may be normalised, but the words must survive intact.
        assert body_text.split() == text.split()

    @given(depth=st.integers(min_value=1, max_value=30))
    def test_nested_divs(self, depth):
        html = "<div>" * depth + "x" + "</div>" * depth
        doc = parse_document(html)
        count = sum(1 for e in doc.body.elements() if e.tag == "div")
        assert count == depth

    @given(
        attr_value=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=30,
        )
    )
    def test_attr_round_trip_through_serializer(self, attr_value):
        el = Element("div", {"data-v": attr_value})
        doc = Document()
        html_el = Element("html")
        body = Element("body")
        doc.append_child(html_el)
        html_el.append_child(body)
        body.append_child(el)
        doc2 = parse_document(to_html(doc))
        div = next(e for e in doc2.body.elements() if e.tag == "div")
        assert div.get_attribute("data-v") == attr_value
