"""Matrix tests: every banner/wall template variant must be detectable.

The detector's word corpus must cover every language × variant ×
placement combination the generator can emit — this is the systematic
coverage behind the paper's 100% recall claim (§3).
"""

import pytest

from repro.bannerclick import BannerClick
from repro.browser import Browser
from repro.lang import detect_language
from repro.netsim import Network, StaticServer
from repro.pricing import extract_price
from repro.soup import make_soup
from repro.vantage import VANTAGE_POINTS
from repro.webgen.banners import _TEXTS as BANNER_LANGS
from repro.webgen.banners import regular_banner_html
from repro.webgen.cookiewalls import _TEXTS as WALL_LANGS
from repro.webgen.cookiewalls import wall_markup
from repro.webgen.spec import SiteSpec, WallSpec, BannerKind

ALL_REGIONS = frozenset(VANTAGE_POINTS)


def page_for(html):
    net = Network()
    net.register("matrix.de", StaticServer(html))
    browser = Browser(net, VANTAGE_POINTS["DE"])
    return browser.visit("matrix.de")


def wall_spec(language, placement, *, period="month", currency="EUR",
              cents=299):
    return SiteSpec(
        domain="matrix.de",
        tld="de",
        language=language,
        category="News and Media",
        banner=BannerKind.COOKIEWALL,
        reject_button=False,
        site_name="Matrix",
        wall=WallSpec(
            placement=placement,
            serving="inline",
            provider=None,
            monthly_price_cents=cents,
            display_currency=currency,
            billing_period=period,
            regions=ALL_REGIONS,
        ),
    )


class TestRegularBannerMatrix:
    @pytest.mark.parametrize("language", sorted(BANNER_LANGS))
    @pytest.mark.parametrize("variant", [0, 1, 2, 3])
    def test_detected_with_accept(self, language, variant):
        html = regular_banner_html(language, variant=variant)
        page = page_for(html)
        detection = BannerClick().detect(page)
        assert detection.found, (language, variant)
        assert detection.accept_element is not None, (language, variant)
        assert not detection.is_cookiewall, (language, variant)

    @pytest.mark.parametrize("language", sorted(BANNER_LANGS))
    def test_reject_button_found(self, language):
        html = regular_banner_html(language, reject_button=True)
        detection = BannerClick().detect(page_for(html))
        assert detection.has_reject, language

    @pytest.mark.parametrize("language", sorted(BANNER_LANGS))
    def test_banner_language_is_detectable(self, language):
        text = make_soup(regular_banner_html(language)).get_text()
        # Banner text alone is short; it must at least not be mistaken
        # for a *different* language with high confidence.
        result = detect_language(text)
        assert result.language == language or not result.is_reliable


class TestWallMatrix:
    @pytest.mark.parametrize("language", sorted(WALL_LANGS))
    @pytest.mark.parametrize(
        "placement", ["main", "iframe", "shadow-open", "shadow-closed"]
    )
    def test_wall_detected_everywhere(self, language, placement):
        spec = wall_spec(language, placement)
        page = page_for(wall_markup(spec))
        detection = BannerClick().detect(page)
        assert detection.is_cookiewall, (language, placement)
        assert detection.accept_element is not None
        assert not detection.has_reject

    @pytest.mark.parametrize("language", sorted(WALL_LANGS))
    @pytest.mark.parametrize("period", ["month", "year"])
    def test_wall_price_extracts(self, language, period):
        spec = wall_spec(language, "main", period=period)
        text = make_soup(wall_markup(spec)).get_text()
        price = extract_price(text)
        assert price is not None, (language, period)
        assert price.period == period
        assert abs(price.monthly_eur_cents - 299) <= 2

    @pytest.mark.parametrize(
        "currency", ["EUR", "USD", "GBP", "CHF", "AUD"]
    )
    def test_wall_currency_variants_extract(self, currency):
        spec = wall_spec("en", "main", currency=currency)
        text = make_soup(wall_markup(spec)).get_text()
        price = extract_price(text)
        assert price is not None, currency
        assert price.currency == currency
        assert abs(price.monthly_eur_cents - 299) <= 2

    @pytest.mark.parametrize("cents", [99, 199, 299, 499, 899, 999])
    def test_wall_price_levels_extract(self, cents):
        spec = wall_spec("de", "main", cents=cents)
        text = make_soup(wall_markup(spec)).get_text()
        price = extract_price(text)
        assert price is not None
        assert abs(price.monthly_eur_cents - cents) <= 2

    @pytest.mark.parametrize("language", sorted(WALL_LANGS))
    def test_wall_has_no_reject_words(self, language):
        """Walls must not accidentally contain reject-button wording."""
        from repro.bannerclick.corpus import has_reject_words

        spec = wall_spec(language, "main")
        buttons = make_soup(wall_markup(spec)).find_all("button")
        for button in buttons:
            assert not has_reject_words(button.get_text()), language
