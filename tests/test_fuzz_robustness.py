"""Fuzz-style robustness: parsers must never crash on arbitrary input.

A measurement crawler survives the wild web only if its parsers fail
closed: malformed HTML, headers, filters, and consent strings must
produce errors or degraded output — never exceptions other than the
library's own.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consent.tcf import decode_tc_string
from repro.errors import ParseError, ReproError
from repro.httpkit import parse_cookie_header
from repro.pricing import extract_price
from repro.soup import parse_document
from repro.soup.tokenizer import decode_entities, tokenize

_printable = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
    max_size=200,
)
_html_ish = st.text(
    alphabet=st.sampled_from(list("<>=/\"' abcdefgWERT0123456789&;#!-")),
    max_size=150,
)


class TestParserRobustness:
    @given(text=_html_ish)
    @settings(max_examples=150, deadline=None)
    def test_tokenizer_never_crashes(self, text):
        assert isinstance(list(tokenize(text)), list)

    @given(text=_html_ish)
    @settings(max_examples=150, deadline=None)
    def test_parser_always_builds_a_document(self, text):
        doc = parse_document(text)
        assert doc.body is not None  # browsers always synthesise one

    @given(text=_printable)
    @settings(max_examples=100, deadline=None)
    def test_entity_decoder_total(self, text):
        assert isinstance(decode_entities(text), str)

    @given(text=_printable)
    @settings(max_examples=100, deadline=None)
    def test_price_extractor_total(self, text):
        result = extract_price(text)
        assert result is None or result.monthly_eur_cents >= 0

    @given(text=_printable)
    @settings(max_examples=100, deadline=None)
    def test_cookie_header_parser_total(self, text):
        assert isinstance(parse_cookie_header(text), dict)

    @given(token=_printable)
    @settings(max_examples=100, deadline=None)
    def test_tc_decoder_raises_only_parse_error(self, token):
        try:
            decode_tc_string(token)
        except ParseError:
            pass  # the only acceptable failure mode

    @given(line=_printable)
    @settings(max_examples=120, deadline=None)
    def test_filter_parser_raises_only_filter_errors(self, line):
        from repro.adblock.filters import parse_filter_line

        try:
            parse_filter_line(line)
        except ReproError:
            pass

    @given(raw=_printable)
    @settings(max_examples=120, deadline=None)
    def test_url_parser_raises_only_url_error(self, raw):
        from repro.errors import URLError
        from repro.urlkit import parse

        try:
            parse(raw)
        except URLError:
            pass

    @given(selector=st.text(
        alphabet=st.sampled_from(list("div.#[]()>:*= abc-_,'\"")), max_size=40,
    ))
    @settings(max_examples=120, deadline=None)
    def test_selector_parser_raises_only_selector_error(self, selector):
        from repro.dom.selector import parse_selector
        from repro.errors import SelectorError

        try:
            parse_selector(selector)
        except SelectorError:
            pass

    @given(expr=st.text(
        alphabet=st.sampled_from(list("/@[]()'= abcdeftx*")), max_size=40,
    ))
    @settings(max_examples=120, deadline=None)
    def test_xpath_parser_raises_only_selector_error(self, expr):
        from repro.dom.xpath import parse_xpath
        from repro.errors import SelectorError

        try:
            parse_xpath(expr)
        except SelectorError:
            pass


class TestDetectorRobustness:
    @given(text=_html_ish)
    @settings(max_examples=60, deadline=None)
    def test_detector_handles_arbitrary_pages(self, text):
        from repro.bannerclick import BannerClick
        from repro.browser import Browser
        from repro.netsim import Network, StaticServer
        from repro.vantage import VANTAGE_POINTS

        net = Network()
        net.register("fuzz.de", StaticServer(text))
        browser = Browser(net, VANTAGE_POINTS["DE"])
        page = browser.visit("fuzz.de")
        detection = BannerClick().detect(page)
        assert detection.found in (True, False)
