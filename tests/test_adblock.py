"""Tests for the filter parser, engine, and uBlock extension."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.adblock import (
    FilterEngine,
    NaiveFilterEngine,
    UBlockOrigin,
    annoyances_list,
    easylist,
    parse_filter_list,
)
from repro.adblock.filters import (
    parse_filter_line,
    good_filter_tokens,
    NetworkFilter,
    CosmeticFilter,
)
from repro.browser import Browser
from repro.errors import FilterSyntaxError
from repro.httpkit import Request
from repro.netsim import Network, StaticServer
from repro.vantage import VANTAGE_POINTS


def req(url, initiator="https://site.de/", rtype="script"):
    return Request(url=url, initiator=initiator, resource_type=rtype)


class TestFilterParsing:
    def test_comment_lines_skipped(self):
        assert parse_filter_line("! comment") is None
        assert parse_filter_line("[Adblock Plus 2.0]") is None
        assert parse_filter_line("") is None

    def test_host_anchor(self):
        f = parse_filter_line("||ads.example.com^")
        assert isinstance(f, NetworkFilter)
        assert f.anchor_domain == "ads.example.com"

    def test_options(self):
        f = parse_filter_line("||t.net^$script,third-party")
        assert f.resource_types == {"script"}
        assert f.third_party is True

    def test_domain_option(self):
        f = parse_filter_line("||t.net^$domain=a.de|~b.de")
        assert f.include_domains == {"a.de"}
        assert f.exclude_domains == {"b.de"}

    def test_exception(self):
        f = parse_filter_line("@@||good.net^")
        assert f.is_exception

    def test_substring_wildcard(self):
        f = parse_filter_line("*cdn.opencmp.net/*")
        assert f.substring_regex is not None

    def test_cosmetic_generic(self):
        f = parse_filter_line("##.ad-banner")
        assert isinstance(f, CosmeticFilter)
        assert f.domains == set()

    def test_cosmetic_domain_specific(self):
        f = parse_filter_line("example.de,other.de##div[data-x]")
        assert f.domains == {"example.de", "other.de"}

    def test_cosmetic_exception(self):
        f = parse_filter_line("example.de#@#.ad-banner")
        assert f.is_exception

    @pytest.mark.parametrize("bad", ["$script", "##", "||^", "||a/b^", "||x^$frobnicate=1"])
    def test_syntax_errors(self, bad):
        with pytest.raises(FilterSyntaxError):
            parse_filter_line(bad)

    def test_parse_filter_list_splits_kinds(self):
        network, cosmetic = parse_filter_list(
            "||a.net^\n##.x\n! c\n@@||b.net^\nexample.de##.y\n"
        )
        assert len(network) == 2
        assert len(cosmetic) == 2


class TestMatching:
    def test_host_anchor_matches_subdomains(self):
        f = parse_filter_line("||tracker.net^")
        assert f.matches(req("https://tracker.net/a.js"))
        assert f.matches(req("https://cdn.tracker.net/a.js"))
        assert not f.matches(req("https://nottracker.net/a.js"))

    def test_type_option_restricts(self):
        f = parse_filter_line("||t.net^$image")
        assert f.matches(req("https://t.net/x.gif", rtype="image"))
        assert not f.matches(req("https://t.net/x.js", rtype="script"))

    def test_third_party_option(self):
        f = parse_filter_line("||site.de^$third-party")
        assert not f.matches(req("https://cdn.site.de/x.js", initiator="https://www.site.de/"))
        assert f.matches(req("https://cdn.site.de/x.js", initiator="https://other.de/"))

    def test_domain_option(self):
        f = parse_filter_line("||t.net^$domain=news.de")
        assert f.matches(req("https://t.net/x.js", initiator="https://www.news.de/"))
        assert not f.matches(req("https://t.net/x.js", initiator="https://blog.de/"))

    def test_substring_with_separator(self):
        f = parse_filter_line("*cdn.opencmp.net/*")
        assert f.matches(req("https://cdn.opencmp.net/cmp.js"))
        assert not f.matches(req("https://opencmp.net/cmp.js"))


class TestEngine:
    def make_engine(self):
        engine = FilterEngine()
        engine.add_list("||blockme.net^\n@@||blockme.net^$domain=trusted.de\n##.ad")
        return engine

    def test_block(self):
        engine = self.make_engine()
        assert engine.should_block(req("https://blockme.net/x.js"))

    def test_exception_overrides(self):
        engine = self.make_engine()
        r = req("https://blockme.net/x.js", initiator="https://trusted.de/")
        assert not engine.should_block(r)

    def test_cosmetic_selectors(self):
        engine = FilterEngine()
        engine.add_list("##.ad\nexample.de##.wall\nexample.de#@#.ad")
        assert engine.cosmetic_selectors("www.example.de") == [".wall"]
        assert engine.cosmetic_selectors("other.net") == [".ad"]

    def test_filter_count(self):
        assert self.make_engine().filter_count == 3


class TestFilterTokens:
    def test_bounded_runs_are_good(self):
        assert good_filter_tokens("/pixel?id=") == ["pixel", "id"]

    def test_edge_and_wildcard_runs_are_excluded(self):
        # "cdn" touches the start, "net" the "*": either could be a
        # fragment of a longer token in a matching URL.
        assert good_filter_tokens("cdn.opencmp.net*") == ["opencmp"]

    def test_separator_is_a_valid_boundary(self):
        assert good_filter_tokens("/ads^") == ["ads"]


@pytest.mark.parametrize("engine_cls", [FilterEngine, NaiveFilterEngine])
class TestHitCounting:
    def _engine(self, engine_cls):
        engine = engine_cls()
        engine.add_list("||blocked.net^\n@@||blocked.net^$domain=trusted.de\n")
        return engine

    def test_one_decision_counts_once(self, engine_cls):
        engine = self._engine(engine_cls)
        request = req("https://blocked.net/a.js")
        assert engine.should_block(request)
        # Introspection after the decision must not inflate the logger.
        assert engine.explain(request) == "||blocked.net^"
        assert engine.matching_filter(request).raw == "||blocked.net^"
        assert dict(engine.hit_counts) == {"||blocked.net^": 1}

    def test_exceptions_attribute_the_hit_to_the_allow_rule(self, engine_cls):
        engine = self._engine(engine_cls)
        request = req("https://blocked.net/a.js", initiator="https://trusted.de/")
        assert not engine.should_block(request)
        assert dict(engine.hit_counts) == {
            "@@||blocked.net^$domain=trusted.de": 1
        }

    def test_logger_ranking(self, engine_cls):
        engine = engine_cls()
        engine.add_list("||a.net^\n||b.net^\n")
        for _ in range(3):
            engine.should_block(req("https://a.net/x.js"))
        engine.should_block(req("https://b.net/x.js"))
        engine.explain(req("https://a.net/x.js"))  # must not count
        assert engine.top_filters() == [("||a.net^", 3), ("||b.net^", 1)]

    def test_shared_engine_concurrent_counts_are_exact(self, engine_cls):
        """Regression: a shared engine under the parallel executor must
        not drop hit-count increments."""
        engine = engine_cls()
        engine.add_list("||hot.net^\n")
        request = req("https://hot.net/x.js")
        per_thread, threads = 500, 8
        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(
                pool.map(
                    lambda _: [
                        engine.should_block(request) for _ in range(per_thread)
                    ],
                    range(threads),
                )
            )
        assert engine.hit_counts["||hot.net^"] == per_thread * threads


class TestBuiltinLists:
    def test_easylist_blocks_known_ad_domain(self):
        engine = FilterEngine()
        engine.add_list(easylist())
        assert engine.should_block(req("https://doubleclick.net/ads.js"))
        assert engine.should_block(req("https://sub.trackmax.com/t.js"))

    def test_easylist_does_not_block_cmp(self):
        engine = FilterEngine()
        engine.add_list(easylist())
        assert not engine.should_block(req("https://cdn.opencmp.net/cmp.js"))

    def test_annoyances_blocks_cmp_and_smp(self):
        engine = FilterEngine()
        engine.add_list(annoyances_list())
        assert engine.should_block(req("https://cdn.opencmp.net/cmp.js"))
        assert engine.should_block(req("https://cdn.contentpass.net/loader.js"))
        assert engine.should_block(req("https://cdn.freechoice.club/loader.js"))

    def test_annoyances_does_not_block_unlisted_cmp(self):
        engine = FilterEngine()
        engine.add_list(annoyances_list())
        assert not engine.should_block(req("https://cdn.privacyhub-cdn.com/l.js"))


class TestUBlockExtension:
    def test_blocks_tracker_requests_in_browser(self):
        net = Network()
        net.register(
            "site.de",
            StaticServer('<img src="https://doubleclick.net/p.gif"><p>x</p>'),
        )
        ublock = UBlockOrigin()
        browser = Browser(net, VANTAGE_POINTS["DE"], extensions=[ublock])
        page = browser.visit("site.de")
        assert len(page.blocked_requests) == 1
        assert ublock.blocked_count == 1
        assert not browser.jar.has("uid", "doubleclick.net")

    def test_never_blocks_documents(self):
        net = Network()
        net.register("doubleclick.net", StaticServer("<p>landing</p>"))
        browser = Browser(
            net, VANTAGE_POINTS["DE"], extensions=[UBlockOrigin()]
        )
        page = browser.visit("doubleclick.net")
        assert page.status == 200

    def test_cosmetic_filtering_removes_elements(self):
        net = Network()
        net.register(
            "site.de",
            StaticServer('<div class="ad-banner-top">buy</div><p>body</p>'),
        )
        browser = Browser(net, VANTAGE_POINTS["DE"], extensions=[UBlockOrigin()])
        page = browser.visit("site.de")
        assert "buy" not in page.visible_text()

    def test_annoyances_flag(self):
        assert UBlockOrigin().annoyances_enabled is False
        assert UBlockOrigin(annoyances=True).annoyances_enabled is True
