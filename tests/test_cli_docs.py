"""Guard: the CLI's --help output and README stay in sync.

The engine-backed subcommands (``crawl``, ``measure``,
``longitudinal``, ``multivantage``) are the operational surface of
the project; a flag added to the parser but not the README — or
documented but removed — is exactly the drift CI should catch.  The
parser is the source of truth: every option it defines must appear in
the README's CLI section, and every ``--flag`` the README mentions
there must exist in the parser and in the subcommand's ``--help``
text.
"""

import re
from pathlib import Path

import pytest

from repro.cli import build_parser

README = Path(__file__).resolve().parent.parent / "README.md"

#: Subcommands whose flag surface the README must track.
GUARDED = ("crawl", "measure", "longitudinal", "multivantage")

#: Flags shared by every engine-backed subcommand, documented once in
#: the README's common list rather than per subcommand.
COMMON = {
    "--scale", "--seed", "--workers", "--shards", "--executor", "--merge",
    "--resume", "--chaos-seed", "--deadline", "--breaker", "--config",
}


def top_level_parsers():
    parser = build_parser()
    subparsers = next(
        action for action in parser._actions
        if getattr(action, "choices", None)
    )
    return subparsers.choices


def subcommand_parsers():
    return {name: top_level_parsers()[name] for name in GUARDED}


def parser_flags(subparser):
    return {
        option
        for action in subparser._actions
        for option in action.option_strings
        if option.startswith("--") and option != "--help"
    }


def readme_cli_section():
    text = README.read_text(encoding="utf-8")
    match = re.search(
        r"^## Command-line interface\n(.*?)(?=^## )", text,
        re.DOTALL | re.MULTILINE,
    )
    assert match, "README.md lost its '## Command-line interface' section"
    return match.group(1)


def readme_subsections():
    """``{subcommand: text}`` plus the common intro under ``None``."""
    section = readme_cli_section()
    parts = re.split(r"^### `([a-z-]+)`\n", section, flags=re.MULTILINE)
    out = {None: parts[0]}
    for name, body in zip(parts[1::2], parts[2::2]):
        out[name] = body
    return out


def documented_flags(text):
    return set(re.findall(r"`(--[a-z-]+)`", text))


@pytest.mark.parametrize("name", GUARDED)
def test_every_parser_flag_is_documented(name):
    subsections = readme_subsections()
    assert name in subsections, f"README lacks a '### `{name}`' subsection"
    documented = documented_flags(subsections[name]) | documented_flags(
        subsections[None]
    )
    missing = parser_flags(subcommand_parsers()[name]) - documented
    assert not missing, (
        f"'{name}' flags missing from README.md: {sorted(missing)}"
    )


@pytest.mark.parametrize("name", GUARDED)
def test_every_documented_flag_exists_in_help(name):
    subparser = subcommand_parsers()[name]
    known = parser_flags(subparser)
    help_text = subparser.format_help()
    documented = documented_flags(readme_subsections()[name])
    ghosts = documented - known
    assert not ghosts, (
        f"README.md documents flags '{name}' does not have: {sorted(ghosts)}"
    )
    for flag in documented:
        assert flag in help_text, f"{flag} absent from '{name} --help'"


def test_common_flags_documented_once():
    common_text = readme_subsections()[None]
    documented = documented_flags(common_text)
    assert COMMON <= documented, (
        f"README common-flag list lost: {sorted(COMMON - documented)}"
    )
    # And the parser really does give every guarded subcommand all of
    # them (otherwise the shared documentation would overclaim).
    for name, subparser in subcommand_parsers().items():
        assert COMMON <= parser_flags(subparser), name


# ---------------------------------------------------------------------------
# The `spec` dry-run surface: `spec <kind>` must mirror the real
# subcommand's flags exactly, or the printed spec stops being "what
# the real run would execute".
# ---------------------------------------------------------------------------

def spec_kind_parsers():
    spec = top_level_parsers()["spec"]
    subparsers = next(
        action for action in spec._actions
        if getattr(action, "choices", None)
    )
    return dict(subparsers.choices)


@pytest.mark.parametrize("name", GUARDED)
def test_spec_subcommand_mirrors_flags(name):
    mirrored = spec_kind_parsers()
    assert name in mirrored, f"'spec {name}' subcommand missing"
    assert parser_flags(mirrored[name]) == parser_flags(
        subcommand_parsers()[name]
    ), f"'spec {name}' flag surface drifted from '{name}'"


def test_readme_documents_streaming_analysis():
    """The one-pass pipeline's documented contract must not drift:
    the README section naming the memory model, the decode boundary,
    and RawRecord semantics is what the zero-copy tests and the
    bench floors enforce."""
    text = README.read_text(encoding="utf-8")
    match = re.search(
        r"^## Streaming analysis\n(.*?)(?=^## )", text,
        re.DOTALL | re.MULTILINE,
    )
    assert match, "README.md lost its '## Streaming analysis' section"
    section = match.group(1)
    for anchor in (
        "RawRecord", "record_decode_count", "materialize_record",
        "streaming=True", "BENCH_streaming.json", "--flat-scales",
        "check_streaming_analysis.py",
    ):
        assert anchor in section, (
            f"README 'Streaming analysis' section no longer mentions "
            f"{anchor}"
        )


def test_readme_documents_multivantage_campaigns():
    """The multi-vantage surface must stay documented: the campaign
    section naming the regimes, the scenario knobs, and the
    discrepancy report is what the vantage-matrix CI job and the
    BENCH_discrepancy floors enforce."""
    text = README.read_text(encoding="utf-8")
    match = re.search(
        r"^## Multi-vantage campaigns\n(.*?)(?=^## )", text,
        re.DOTALL | re.MULTILINE,
    )
    assert match, "README.md lost its '## Multi-vantage campaigns' section"
    section = match.group(1)
    for anchor in (
        "MultiVantageSpec", "--vps", "--regime", "geo-blocked",
        "--relocate", "StreamingDiscrepancyReport",
        "--product discrepancy", "BENCH_discrepancy.json",
        "vantage-matrix",
    ):
        assert anchor in section, (
            f"README 'Multi-vantage campaigns' section no longer "
            f"mentions {anchor}"
        )
    # The documented report product must actually exist in the parser.
    report = top_level_parsers()["report"]
    product = next(
        action for action in report._actions
        if "--product" in action.option_strings
    )
    assert "discrepancy" in product.choices


def test_readme_documents_resilience():
    """The resilience surface must stay documented: the section naming
    the chaos plane, the virtual clock, breakers, degradation, the
    differential oracle, and the BENCH_chaos floors is what the
    chaos-matrix CI job and tests/test_chaos.py enforce."""
    text = README.read_text(encoding="utf-8")
    match = re.search(
        r"^## Resilience & chaos testing\n(.*?)(?=^## )", text,
        re.DOTALL | re.MULTILINE,
    )
    assert match, (
        "README.md lost its '## Resilience & chaos testing' section"
    )
    section = match.group(1)
    for anchor in (
        "ChaosSpec", "ResilienceSpec", "--chaos-seed", "--deadline",
        "--breaker", "Virtual clock", "BreakerOpenError",
        "StreamingFailureTaxonomy", "byte-identical",
        "tear_trailing_line", "BENCH_chaos.json", "chaos-matrix",
        "test_chaos.py",
    ):
        assert anchor in section, (
            f"README 'Resilience & chaos testing' section no longer "
            f"mentions {anchor}"
        )


def test_readme_documents_static_analysis():
    """The reprolint surface must stay documented: the section naming
    every rule, the pragma syntax, the baseline workflow, and the
    --explain/--format flags is what the CI lint gate and the fixture
    corpus in tests/test_reprolint.py enforce."""
    text = README.read_text(encoding="utf-8")
    match = re.search(
        r"^## Static analysis\n(.*?)(?=^## )", text,
        re.DOTALL | re.MULTILINE,
    )
    assert match, "README.md lost its '## Static analysis' section"
    section = match.group(1)
    from tools.reprolint.rules import rules_by_name

    # Every registered rule (and no ghost rule) is documented by name.
    for rule in rules_by_name():
        assert f"`{rule}`" in section, (
            f"README 'Static analysis' section does not document rule "
            f"{rule!r}"
        )
    for anchor in (
        "python -m tools.reprolint", "reprolint: disable=", "--explain",
        "--list-rules", "--format=github", "baseline.json",
        "--write-baseline", "bad-pragma", "unused-suppression",
        "check_streaming_analysis.py", "test_reprolint.py",
    ):
        assert anchor in section, (
            f"README 'Static analysis' section no longer mentions "
            f"{anchor}"
        )


def test_readme_documents_service_verbs():
    """The operational verbs must stay documented: `serve`, `worker`,
    and `submit` each need a README subsection whose flags exist in
    the parser (the same no-ghost rule the run subcommands get)."""
    subsections = readme_subsections()
    top = top_level_parsers()
    for verb in ("serve", "worker", "submit"):
        assert verb in top, f"parser lost the '{verb}' subcommand"
        assert verb in subsections, (
            f"README lacks a '### `{verb}`' subsection"
        )
    # `serve` is a flat parser: its documented flags must all exist.
    serve_flags = parser_flags(top["serve"])
    ghosts = documented_flags(subsections["serve"]) - serve_flags
    assert not ghosts, f"README documents serve flags {sorted(ghosts)}"
    assert {"--data-dir", "--quota", "--resume"} <= serve_flags
    # `worker serve` and `submit <kind>` nest; check the leaf parsers.
    worker_serve = next(
        action for action in top["worker"]._actions
        if getattr(action, "choices", None)
    ).choices["serve"]
    assert {"--connect", "--id", "--heartbeat"} <= parser_flags(
        worker_serve
    )
    submit_kinds = next(
        action for action in top["submit"]._actions
        if getattr(action, "choices", None)
    ).choices
    for name in GUARDED:
        assert {"--url", "--tenant", "--priority", "--wait"} <= (
            parser_flags(submit_kinds[name])
        ), f"'submit {name}' lost part of the service surface"


def test_readme_documents_campaign_service():
    """The service/distributed surface must stay documented: the
    section naming the wire version, the endpoint table, the worker
    protocol, and the CI/bench gates is what the distributed-smoke
    job and tests/test_distributed.py + tests/test_service.py
    enforce."""
    text = README.read_text(encoding="utf-8")
    match = re.search(
        r"^## Campaign service & distributed workers\n(.*?)(?=^## )",
        text, re.DOTALL | re.MULTILINE,
    )
    assert match, (
        "README.md lost its '## Campaign service & distributed "
        "workers' section"
    )
    section = match.group(1)
    for anchor in (
        "schema_version", "SPEC_SCHEMA_VERSION", "SpecVersionError",
        "WIRE_PROTOCOL_VERSION", "heartbeat", "re-dispatched",
        "byte-identical to\nthe serial run", "`transport`",
        "/v1/campaigns", "429", "content-addressed", "serve --resume",
        "ServiceClient", "distributed-smoke", "BENCH_distributed.json",
        "test_distributed.py", "test_service.py",
    ):
        assert anchor in section, (
            f"README 'Campaign service & distributed workers' section "
            f"no longer mentions {anchor!r}"
        )
    # The documented executor really exists in the engine surface.
    from repro.api.spec import EXECUTOR_BACKENDS

    assert "distributed" in EXECUTOR_BACKENDS


def test_readme_documents_spec_and_checkpoint():
    subsections = readme_subsections()
    assert "spec" in subsections, "README lacks a '### `spec`' subsection"
    assert "--config" in subsections["spec"], (
        "README '### `spec`' must mention --config"
    )
    assert "checkpoint" in subsections, (
        "README lacks a '### `checkpoint`' subsection"
    )
    assert "compact" in subsections["checkpoint"]
    # The verbs must actually exist in the parser.
    top = top_level_parsers()
    assert "spec" in top and "checkpoint" in top
