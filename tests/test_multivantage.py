"""Multi-vantage campaigns: scenarios, determinism, discrepancy report.

The campaign promise mirrors the engine's: for a fixed world seed and
scenario, the wave spools are **byte-identical** across executor
backends × worker counts × resumed-vs-uninterrupted runs — the
scenario rides in ``CrawlPlan.context``, so the checkpoint fingerprint
covers it and a regime change refuses to resume.  CI runs this module
once per regulation regime (``REPRO_REGULATION_REGIME=eu|non-eu|...``)
so a regression in one regime fails its own job; locally, with the
variable unset, every regime runs in one pass.
"""

import os

import pytest

from repro.analysis import StreamingDiscrepancyReport, build_discrepancy_report
from repro.measure import (
    CheckpointMismatch,
    CrawlEngine,
    Crawler,
    FaultInjectingExecutor,
    FaultInjectingProcessExecutor,
    VisitRecord,
)
from repro.vantage import (
    REGULATION_REGIMES,
    RegulationScenario,
    build_scenario,
    get_vantage_point,
    regime_scenario,
)

_ENV_REGIME = os.environ.get("REPRO_REGULATION_REGIME")
if _ENV_REGIME is not None and _ENV_REGIME not in REGULATION_REGIMES:
    raise RuntimeError(
        f"REPRO_REGULATION_REGIME={_ENV_REGIME!r} is not one of "
        f"{REGULATION_REGIMES}"
    )
REGIMES = (_ENV_REGIME,) if _ENV_REGIME else REGULATION_REGIMES

SHARDS = 6
WORKERS = 3
#: One EU and one non-EU vantage point keep the matrix fast while
#: still exercising relocation in both directions and geo-blocking.
VPS = ("USE", "DE")


def campaign_context(regime, wave=0):
    return {"wave": wave, "scenario": regime_scenario(regime).to_context()}


def make_engine(backend, crawler, **kwargs):
    workers = 1 if backend == "serial" else WORKERS
    return CrawlEngine(
        crawler, workers=workers, shards=SHARDS, backend=backend, **kwargs
    )


def crash_executor(backend, fail_shards):
    if backend == "process":
        return FaultInjectingProcessExecutor(1, fail_shards)
    workers = 1 if backend == "serial" else WORKERS
    return FaultInjectingExecutor(workers, fail_shards, partial=True)


@pytest.fixture(scope="module")
def small_crawler(small_world):
    return Crawler(small_world)


@pytest.fixture(scope="module")
def campaign_targets(small_world):
    """Wall sites plus filler, so every regime has observable effect."""
    walls = sorted(small_world.wall_domains)[:12]
    filler = [d for d in small_world.crawl_targets if d not in set(walls)]
    return walls + filler[:12]


def campaign_plan(crawler, regime, targets, wave=0):
    plan = crawler.plan_detection_crawl(list(VPS), targets)
    plan.context["multivantage"] = campaign_context(regime, wave=wave)
    return plan


@pytest.fixture(scope="module")
def serial_references(tmp_path_factory, small_crawler, campaign_targets):
    """Per-regime uninterrupted serial spools every config must match."""
    base = tmp_path_factory.mktemp("reference")
    references = {}
    for regime in REGIMES:
        path = base / f"{regime}.jsonl"
        CrawlEngine(small_crawler, spool_path=path).execute(
            campaign_plan(small_crawler, regime, campaign_targets)
        )
        references[regime] = path.read_bytes()
    return references


# ----------------------------------------------------------------------
# Determinism matrix: backends × workers × resume, per regime
# ----------------------------------------------------------------------
@pytest.mark.parametrize("regime", REGIMES)
class TestCampaignDeterminism:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_spool_matches_serial_reference(
        self, regime, backend, tmp_path, small_crawler, campaign_targets,
        serial_references,
    ):
        out = tmp_path / f"{backend}.jsonl"
        result = make_engine(backend, small_crawler, spool_path=out).execute(
            campaign_plan(small_crawler, regime, campaign_targets)
        )
        assert len(result) == len(VPS) * len(campaign_targets)
        assert out.read_bytes() == serial_references[regime]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_crashed_run_resumes_byte_identical(
        self, regime, backend, tmp_path, small_crawler, campaign_targets,
        serial_references,
    ):
        plan = campaign_plan(small_crawler, regime, campaign_targets)
        out = tmp_path / "crashed.jsonl"
        checkpoint = tmp_path / "crashed.jsonl.checkpoint"
        engine = make_engine(
            backend, small_crawler, spool_path=out,
            checkpoint_path=checkpoint,
            executor=crash_executor(backend, fail_shards=(1, 4)),
        )
        with pytest.raises(RuntimeError):
            engine.execute(plan)
        assert checkpoint.exists()
        result = make_engine(
            backend, small_crawler, spool_path=out,
            checkpoint_path=checkpoint, resume=True,
        ).execute(plan)
        assert 0 < result.resumed < len(plan)
        assert out.read_bytes() == serial_references[regime]

    def test_checkpoint_refuses_a_different_scenario(
        self, regime, tmp_path, small_crawler, campaign_targets,
    ):
        """The scenario lives in ``plan.context``, so the fingerprint
        must reject resuming one regime's checkpoint under another."""
        plan = campaign_plan(small_crawler, regime, campaign_targets)
        checkpoint = tmp_path / "run.checkpoint"
        engine = make_engine(
            "thread", small_crawler, spool_path=tmp_path / "run.jsonl",
            checkpoint_path=checkpoint,
            executor=crash_executor("thread", fail_shards=(2,)),
        )
        with pytest.raises(RuntimeError):
            engine.execute(plan)
        other = "eu" if regime != "eu" else "non-eu"
        changed = campaign_plan(
            small_crawler, other, campaign_targets
        )
        with pytest.raises(CheckpointMismatch):
            make_engine(
                "thread", small_crawler, spool_path=tmp_path / "run.jsonl",
                checkpoint_path=checkpoint, resume=True,
            ).execute(changed)


# ----------------------------------------------------------------------
# Scenario knobs: regimes, relocation, geo-blocking
# ----------------------------------------------------------------------
class TestRegulationScenarios:
    def test_regime_names_are_case_insensitive(self):
        assert regime_scenario("EU") == regime_scenario("eu")

    def test_unknown_regime_names_the_known_ones(self):
        with pytest.raises(ValueError, match="baseline.*geo-blocked"):
            regime_scenario("mars")

    def test_context_round_trip(self):
        scenario = build_scenario(
            "baseline", relocations={"USE": "DE"}, relocate_from_month=2,
            geo_blocked=("SE",),
        )
        assert RegulationScenario.from_context(
            scenario.to_context()
        ) == scenario

    def test_eu_regime_brings_walls_to_non_eu_vps(self, small_crawler):
        """Routing a US vantage point through a German exit must show
        it the EU wall population."""
        scenario = regime_scenario("eu")
        walls = sorted(small_crawler.world.wall_domains)
        routed = [
            small_crawler.visit("USE", d, scenario=scenario) for d in walls
        ]
        assert all(r.vp == "USE" for r in routed)
        assert all(r.flags.get("exit_vp") == "DE" for r in routed)
        assert [r.is_cookiewall for r in routed] == [
            small_crawler.visit("DE", d).is_cookiewall for d in walls
        ]
        # The regime is observable: EU-only walls appear for USE.
        assert sum(r.is_cookiewall for r in routed) > sum(
            small_crawler.visit("USE", d).is_cookiewall for d in walls
        )

    def test_non_eu_regime_hides_walls_from_eu_vps(self, small_crawler):
        scenario = regime_scenario("non-eu")
        walls = sorted(small_crawler.world.wall_domains)
        baseline = sum(
            small_crawler.visit("DE", d).is_cookiewall for d in walls
        )
        routed = sum(
            small_crawler.visit("DE", d, scenario=scenario).is_cookiewall
            for d in walls
        )
        reference = sum(
            small_crawler.visit("USE", d).is_cookiewall for d in walls
        )
        assert routed == reference < baseline

    def test_geo_blocked_regime_refuses_eu_exits_on_wall_sites(
        self, small_crawler
    ):
        scenario = regime_scenario("geo-blocked")
        domain = sorted(small_crawler.world.wall_domains)[0]
        blocked = small_crawler.visit("DE", domain, scenario=scenario)
        assert not blocked.reachable
        assert blocked.error == "GeoBlocked"
        # Non-EU exits and non-wall sites are untouched.
        assert small_crawler.visit("USE", domain, scenario=scenario).reachable
        plain = next(
            d for d in small_crawler.world.crawl_targets
            if d not in small_crawler.world.wall_domains
        )
        assert small_crawler.visit("DE", plain, scenario=scenario).reachable

    def test_relocation_out_of_a_blocked_region_evades_the_block(
        self, small_crawler
    ):
        scenario = build_scenario("geo-blocked", relocations={"DE": "USE"})
        domain = sorted(small_crawler.world.wall_domains)[0]
        record = small_crawler.visit("DE", domain, scenario=scenario)
        assert record.reachable
        assert record.flags.get("exit_vp") == "USE"

    def test_mid_campaign_relocation_changes_subsequent_waves_only(
        self, small_crawler
    ):
        scenario = build_scenario(
            "baseline", relocations={"USE": "DE"}, relocate_from_month=2
        )
        walls = sorted(small_crawler.world.wall_domains)
        def wall_count(wave):
            return sum(
                small_crawler.visit(
                    "USE", d, scenario=scenario, wave=wave
                ).is_cookiewall
                for d in walls
            )
        at_home = sum(small_crawler.visit("USE", d).is_cookiewall for d in walls)
        relocated = sum(small_crawler.visit("DE", d).is_cookiewall for d in walls)
        assert wall_count(0) == wall_count(1) == at_home
        assert wall_count(2) == relocated > at_home


class TestVantagePointLookup:
    def test_codes_are_case_insensitive(self):
        assert get_vantage_point("de") is get_vantage_point("DE")
        assert get_vantage_point("usE").code == "USE"

    def test_unknown_code_names_the_known_points(self):
        with pytest.raises(KeyError, match="AU.*DE.*USE"):
            get_vantage_point("MOON")


# ----------------------------------------------------------------------
# The streaming discrepancy report
# ----------------------------------------------------------------------
def wall(vp, domain, text="Accept cookies or subscribe for €3.99 per month",
         **flags):
    return VisitRecord(
        vp=vp, domain=domain, is_cookiewall=True, banner_found=True,
        has_accept=True, banner_text=text, flags=dict(flags),
    )


def plain(vp, domain, **flags):
    return VisitRecord(vp=vp, domain=domain, flags=dict(flags))


class TestDiscrepancyReport:
    def test_wall_partial_and_eu_delta(self):
        report = StreamingDiscrepancyReport()
        report.consume([
            wall("DE", "a.example"), plain("USE", "a.example"),
            wall("DE", "b.example"), wall("USE", "b.example"),
        ])
        assert report.wall_counts() == {"USE": 1, "DE": 2}
        delta = report.eu_delta()
        assert delta == {"eu_mean": 2.0, "non_eu_mean": 1.0, "delta": 1.0}
        discrepancies = report.discrepancies()
        assert discrepancies["wall_partial"]["domains"] == 1
        assert discrepancies["wall_partial"]["examples"] == ["a.example"]

    def test_wall_drift_across_waves(self):
        report = build_discrepancy_report([
            (0, [wall("DE", "a.example")]),
            (3, [plain("DE", "a.example")]),
        ])
        assert report.waves == (0, 3)
        assert report.discrepancies()["wall_drift"]["domains"] == 1

    def test_price_spread_and_currency_mix(self):
        report = StreamingDiscrepancyReport()
        report.consume([
            wall("DE", "a.example",
                 text="subscribe for €3.99 per month"),
            wall("USE", "a.example",
                 text="subscribe for $4.50 per month"),
        ])
        discrepancies = report.discrepancies()
        assert discrepancies["price_spread"]["domains"] == 1
        assert discrepancies["currency_mix"]["domains"] == 1
        summary = report.summary()
        assert summary["waves"]["0"]["vps"]["DE"]["wall_price_eur_mean"] == 3.99

    def test_tcf_and_cookie_divergence(self):
        report = StreamingDiscrepancyReport()
        report.consume([
            wall("DE", "a.example", tcf_accept="CPAAAAAAAAAAA"),
            wall("SE", "a.example", tcf_accept="CPBBBBBBBBBBB"),
            plain("DE", "b.example", cookies_third_party=["ads.example"]),
            plain("USE", "b.example",
                  cookies_third_party=["ads.example", "sync.example"]),
        ])
        discrepancies = report.discrepancies()
        assert discrepancies["tcf_divergent"]["domains"] == 1
        assert discrepancies["cookie_divergent"]["domains"] == 1

    def test_geo_blocked_visits_are_counted_not_aggregated(self):
        report = StreamingDiscrepancyReport()
        report.add(VisitRecord(
            vp="DE", domain="a.example", reachable=False, error="GeoBlocked",
        ))
        summary = report.summary()
        assert summary["waves"]["0"]["vps"]["DE"]["geo_blocked"] == 1
        assert summary["domains"] == 0

    def test_non_detection_records_are_ignored(self):
        report = StreamingDiscrepancyReport()
        report.add(object())
        assert report.record_count == 0

    def test_render_is_stable(self):
        records = [wall("DE", "a.example"), plain("USE", "a.example")]
        first = StreamingDiscrepancyReport().consume(records).render()
        second = StreamingDiscrepancyReport().consume(records).render()
        assert first == second
        assert "EU mean" in first


# ----------------------------------------------------------------------
# The campaign end-to-end: Session.run, paper delta, resume
# ----------------------------------------------------------------------
def campaign_spec(out_dir=None, months=(0,), regime="baseline", resume=False):
    from repro.api import (
        EngineSpec, MultiVantageSpec, OutputSpec, RunSpec, WorldSpec,
    )

    return RunSpec(
        kind="multivantage",
        world=WorldSpec(scale=0.02, seed=7),
        engine=EngineSpec(workers=2, resume=resume),
        multivantage=MultiVantageSpec(
            vps=VPS, months=tuple(months), regime=regime,
        ),
        output=OutputSpec(out_dir=str(out_dir) if out_dir else None),
    )


class TestCampaignSession:
    def test_baseline_campaign_reproduces_the_paper_delta(self, tmp_path):
        """EU vantage points must see more walls than non-EU ones on
        the seeded world — the paper's headline observation."""
        from repro.api import Session

        result = Session(campaign_spec(tmp_path / "out")).run()
        report = result.campaign.report
        delta = report.eu_delta()
        assert delta["eu_mean"] > delta["non_eu_mean"]
        counts = report.wall_counts()
        assert counts["DE"] > counts["USE"] > 0
        assert result.record_count == report.record_count > 0
        assert (tmp_path / "out" / "wave-00.jsonl").exists()
        assert "discrepancy" in result.summary()

    def test_half_finished_campaign_resumes(self, tmp_path):
        """A campaign killed between waves replays the completed wave
        from its spool and re-runs only the missing one."""
        from repro.api import Session

        out = tmp_path / "campaign"
        full = Session(campaign_spec(out, months=(0, 2))).run()
        reference = [
            (out / f"wave-{m:02d}.jsonl").read_bytes() for m in (0, 2)
        ]
        # Simulate the crash: the second wave never happened.
        half = tmp_path / "half"
        half.mkdir()
        (half / "wave-00.jsonl").write_bytes(reference[0])
        resumed = Session(
            campaign_spec(half, months=(0, 2), resume=True)
        ).run()
        assert resumed.record_count == full.record_count
        assert resumed.campaign.waves[0].resumed == full.campaign.waves[0].visits
        assert (half / "wave-00.jsonl").read_bytes() == reference[0]
        assert (half / "wave-02.jsonl").read_bytes() == reference[1]
        assert (
            resumed.campaign.report.summary()
            == full.campaign.report.summary()
        )

    def test_in_memory_campaign_matches_spooled_report(self, tmp_path):
        from repro.api import Session

        spooled = Session(campaign_spec(tmp_path / "out")).run()
        in_memory = Session(campaign_spec()).run()
        assert in_memory.records is not None
        assert (
            in_memory.campaign.report.summary()
            == spooled.campaign.report.summary()
        )
