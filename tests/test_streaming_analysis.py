"""Differential tests: streaming aggregators vs the list-based oracles.

The streaming analysis layer claims byte-identical outputs to the
materialised computations.  These tests hold it to that claim at
every level: the raw aggregators against the ``stats`` oracle
functions, the figure/table/report objects against the ``compute_*``
oracles, and the full experiment + papercheck pipeline between
``streaming=True`` and ``streaming=False`` contexts.
"""

import math
import random

import pytest

from repro.analysis.figures import compute_fig4
from repro.analysis.papercheck import compare_with_paper
from repro.analysis.stats import (
    OnlineStats,
    StreamingECDF,
    TopK,
    ecdf,
    ecdf_at,
    mean,
    median,
    quantile,
)
from repro.analysis.streaming import (
    StreamingCookieComparison,
    StreamingCrawlAnalysis,
)
from repro.errors import AnalysisError
from repro.experiments import EXPERIMENTS, ExperimentContext, run_experiment
from repro.measure.records import CookieMeasurement


# ---------------------------------------------------------------------------
# Aggregator units vs the stats oracles
# ---------------------------------------------------------------------------

def _value_streams():
    rng = random.Random(42)
    return [
        [1.0],
        [3.0, 1.0, 2.0],
        [5.0, 5.0, 5.0, 5.0],
        [rng.uniform(0, 100) for _ in range(257)],
        [float(rng.randint(0, 9)) for _ in range(100)],
    ]


def test_online_stats_matches_two_pass():
    for values in _value_streams():
        stats = OnlineStats().extend(values)
        assert stats.count == len(values)
        assert stats.min == min(values)
        assert stats.max == max(values)
        assert stats.mean == pytest.approx(mean(values), abs=1e-12)
        two_pass = sum((v - mean(values)) ** 2 for v in values) / len(values)
        assert stats.variance == pytest.approx(two_pass, abs=1e-9)


def test_online_stats_merge_matches_single_stream():
    values = [random.Random(7).uniform(-5, 5) for _ in range(100)]
    left = OnlineStats().extend(values[:37])
    right = OnlineStats().extend(values[37:])
    merged = left.merge(right)
    single = OnlineStats().extend(values)
    assert merged.count == single.count
    assert merged.mean == pytest.approx(single.mean, abs=1e-12)
    assert merged.variance == pytest.approx(single.variance, abs=1e-9)
    assert merged.min == single.min and merged.max == single.max


def test_online_stats_empty_raises():
    with pytest.raises(AnalysisError):
        _ = OnlineStats().variance


def test_streaming_ecdf_exact_regime_byte_identical():
    """Under the point budget every query equals the list oracle exactly."""
    for values in _value_streams():
        sketch = StreamingECDF().extend(values)
        assert sketch.exact
        assert sketch.count == len(values)
        assert sketch.median() == median(values)
        for q in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0):
            assert sketch.quantile(q) == quantile(values, q)
        for threshold in (min(values), max(values), 2.0, 50.0):
            assert sketch.fraction_at_most(threshold) == ecdf_at(
                values, threshold
            )
        assert sketch.ecdf() == ecdf(values)


def test_streaming_ecdf_budget_collapse_is_bounded_and_flagged():
    sketch = StreamingECDF(max_points=16)
    for i in range(1000):
        sketch.add(float(i))
    assert not sketch.exact
    assert len(sketch._counts) <= 16
    assert sketch.count == 1000
    # The sketch still answers sanely: quantiles are monotone and
    # within the observed range.
    qs = [sketch.quantile(q) for q in (0.1, 0.5, 0.9)]
    assert qs == sorted(qs)
    assert 0.0 <= qs[0] and qs[-1] <= 999.0


def test_streaming_ecdf_merge():
    values = [float(v) for v in random.Random(3).choices(range(20), k=200)]
    left = StreamingECDF().extend(values[:80])
    right = StreamingECDF().extend(values[80:])
    merged = left.merge(right)
    assert merged.median() == median(values)
    assert merged.quantile(0.75) == quantile(values, 0.75)


def test_streaming_ecdf_empty_raises():
    with pytest.raises(AnalysisError):
        StreamingECDF().median()
    with pytest.raises(AnalysisError):
        StreamingECDF().quantile(0.5)
    with pytest.raises(AnalysisError):
        StreamingECDF(max_points=1)


def test_topk_matches_counter_semantics():
    keys = random.Random(5).choices("abcdef", k=300)
    top = TopK().extend(keys)
    counts = {}
    for key in keys:
        counts[key] = counts.get(key, 0) + 1
    assert top.counts == counts
    assert top.total == 300
    oracle_ranked = sorted(counts.items(), key=lambda item: -item[1])
    assert top.ranked() == oracle_ranked
    assert top.ranked(2) == oracle_ranked[:2]
    assert top.mode() == max(counts, key=counts.get)


def test_topk_mode_tie_is_first_seen():
    top = TopK().extend(["x", "y", "y", "x"])
    assert top.mode() == "x"  # first-seen wins a count tie, like max()


# ---------------------------------------------------------------------------
# Crawl-level differential: streaming pass vs materialised oracles
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def contexts():
    """One streaming and one oracle context over identical worlds.

    Two *separate* world builds with the same seed: cookie-count
    jitter is keyed on world-held visit ids, so sharing one mutable
    world across two measurement campaigns would make the second see
    different (though equally deterministic) values.
    """
    from repro.webgen import build_world

    streaming = ExperimentContext(build_world(scale=0.02, seed=7))
    oracle = ExperimentContext(
        build_world(scale=0.02, seed=7), streaming=False
    )
    assert streaming.streaming and not oracle.streaming
    return streaming, oracle


def test_streaming_crawl_analysis_matches_oracles(contexts):
    streaming, oracle = contexts
    analysis = streaming.detection_analysis()
    crawl = oracle.detection_crawl()
    assert analysis.record_count == len(crawl.records)
    assert analysis.detected_wall_domains() == crawl.cookiewall_domains()
    assert (
        analysis.regular_banner_domains_de()
        == crawl.regular_banner_domains("DE")
    )
    assert analysis.table1().render() == oracle.table1().render()
    assert analysis.landscape().render() == oracle.landscape().render()
    assert analysis.figure1().render() == oracle.figure1().render()
    assert analysis.figure2().render() == oracle.figure2().render()
    assert analysis.figure3().render() == oracle.figure3().render()


def test_all_experiments_byte_identical_across_modes(contexts):
    streaming, oracle = contexts
    for experiment_id in sorted(EXPERIMENTS):
        got = run_experiment(experiment_id, context=streaming)
        want = run_experiment(experiment_id, context=oracle)
        assert got.rendered == want.rendered, experiment_id
        assert got.data == want.data, experiment_id


def test_papercheck_byte_identical_across_modes(contexts):
    streaming, oracle = contexts
    ids = sorted(EXPERIMENTS)
    got = compare_with_paper(
        [run_experiment(e, context=streaming) for e in ids]
    )
    want = compare_with_paper(
        [run_experiment(e, context=oracle) for e in ids]
    )
    assert got.render_markdown() == want.render_markdown()
    assert got.render_text() == want.render_text()


# ---------------------------------------------------------------------------
# Cookie comparison differential (figures 4/5 machinery)
# ---------------------------------------------------------------------------

def _measurements(seed, n, label):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        out.append(
            CookieMeasurement(
                vp="DE",
                domain=f"{label}-{i}.example",
                mode="accept",
                repeats=5,
                avg_first_party=round(rng.uniform(0, 12), 1),
                avg_third_party=round(rng.uniform(0, 40), 1),
                avg_tracking=round(rng.uniform(0, 80), 1),
            )
        )
    return out


def test_streaming_cookie_comparison_byte_identical():
    group_a = _measurements(1, 41, "regular")
    group_b = _measurements(2, 37, "wall")
    oracle = compute_fig4(group_a, group_b)
    streaming = (
        StreamingCookieComparison.like(oracle)
        .consume("a", iter(group_a))
        .consume("b", iter(group_b))
    )
    assert streaming.group_size("a") == len(group_a)
    assert streaming.medians("a") == oracle.medians("a")
    assert streaming.medians("b") == oracle.medians("b")
    for metric in ("first_party", "third_party", "tracking"):
        assert streaming.ratio(metric) == oracle.ratio(metric)
    assert streaming.max_tracking("a") == oracle.max_tracking("a")
    assert streaming.max_tracking("b") == oracle.max_tracking("b")
    assert streaming.render() == oracle.render()
    assert streaming.render_distribution() == oracle.render_distribution()


def test_streaming_cookie_comparison_one_empty_group():
    group_a = _measurements(3, 11, "only")
    oracle = compute_fig4(group_a, [])
    streaming = StreamingCookieComparison.like(oracle).consume(
        "a", iter(group_a)
    )
    assert streaming.max_tracking("b") == oracle.max_tracking("b") == 0.0
    # An empty group has no medians: both paths refuse identically.
    with pytest.raises(AnalysisError):
        oracle.render()
    with pytest.raises(AnalysisError):
        streaming.render()


def test_log_transform_is_sketched_not_derived():
    """Interpolated quantiles do not commute with log10(v+1): the
    streaming render must sketch transformed values, and agree with
    the oracle even where log(quantile) != quantile(log)."""
    group_a = [_measurements(9, 2, "a")[i] for i in range(2)]
    group_a[0].avg_tracking = 1.0
    group_a[1].avg_tracking = 99.0
    oracle = compute_fig4(group_a, group_a[:1])
    streaming = (
        StreamingCookieComparison.like(oracle)
        .consume("a", iter(group_a))
        .consume("b", iter(group_a[:1]))
    )
    # the interpolated median of [log(2), log(100)] is not
    # log(median([1, 99]) + 1)
    interpolated = (math.log10(2.0) + math.log10(100.0)) / 2
    assert interpolated != math.log10(50.0 + 1)
    assert streaming.render_distribution() == oracle.render_distribution()
