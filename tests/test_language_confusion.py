"""Language-identification quality: confusion behaviour across corpora."""

import random

import pytest

from repro.lang import CORPORA, LanguageDetector, sample_sentences


@pytest.fixture(scope="module")
def detector():
    return LanguageDetector()


class TestConfusion:
    def test_no_systematic_confusion_pairs(self, detector):
        """No language may lose >20% of its 3-sentence samples to one
        other language (Swedish/Danish are close; German/Dutch too)."""
        rng = random.Random(4)
        for language in CORPORA:
            losses = {}
            trials = 25
            for _ in range(trials):
                text = " ".join(sample_sentences(language, 3, rng))
                got = detector.detect(text).language
                if got != language:
                    losses[got] = losses.get(got, 0) + 1
            for other, count in losses.items():
                assert count / trials <= 0.2, (language, other, count)

    def test_scores_rank_truth_highly(self, detector):
        rng = random.Random(9)
        for language in ("de", "sv", "nl", "da"):
            text = " ".join(sample_sentences(language, 5, rng))
            scores = detector.scores(text)
            ranked = sorted(scores, key=lambda k: -scores[k])
            assert ranked[0] == language

    def test_mixed_language_text_still_classified(self, detector):
        de = CORPORA["de"][0]
        en = CORPORA["en"][0]
        result = detector.detect(f"{de} {de} {en}")
        assert result.language == "de"

    def test_confidence_increases_with_length(self, detector):
        rng = random.Random(2)
        short = detector.detect(" ".join(sample_sentences("it", 1, rng)))
        long = detector.detect(" ".join(sample_sentences("it", 10, rng)))
        assert long.confidence >= short.confidence * 0.9

    def test_custom_corpora(self):
        custom = LanguageDetector(
            {"aa": ["zzzz zzzz zzzz"], "bb": ["qqqq qqqq qqqq"]}
        )
        assert custom.detect("zzzz zzzz").language == "aa"
        assert custom.languages == ("aa", "bb")


class TestDetectorEdgeCases:
    def test_whitespace_only(self, detector):
        assert not detector.detect("   \n\t ").is_reliable

    def test_single_word(self, detector):
        result = detector.detect("Datenschutz")
        assert result.language in CORPORA or result.language == "und"

    def test_unicode_punctuation_ignored(self, detector):
        result = detector.detect("»Wetter« – die Preise sind gestiegen!")
        assert result.language == "de"
