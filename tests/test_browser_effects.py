"""Edge-case tests for the browser's DOM-effect runtime and pipeline."""

import pytest

from repro.browser import Browser
from repro.browser.effects import (
    EffectRuntime,
    decode_effects,
    encode_effects,
)
from repro.errors import ParseError
from repro.netsim import Network, OriginServer, StaticServer
from repro.vantage import VANTAGE_POINTS


class EffectServer(OriginServer):
    def __init__(self, effects):
        self.payload = encode_effects(effects)

    def handle(self, request, visitor):
        return self.effects(request, self.payload)


def load_page(html, effect_hosts=None):
    net = Network()
    net.register("site.de", StaticServer(html))
    for host, effects in (effect_hosts or {}).items():
        net.register(host, EffectServer(effects))
    browser = Browser(net, VANTAGE_POINTS["DE"])
    return browser, browser.visit("site.de")


class TestEffectCodec:
    def test_round_trip(self):
        effects = [{"op": "lock-scroll"}, {"op": "set-flag", "key": "k"}]
        assert decode_effects(encode_effects(effects)) == effects

    def test_empty_body(self):
        assert decode_effects("") == []
        assert decode_effects("  ") == []

    @pytest.mark.parametrize(
        "bad", ['{"op": "x"}', "[1, 2]", '[{"noop": 1}]', "not json"]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ParseError):
            decode_effects(bad)


class TestEffectOps:
    def test_append_html_to_selector_target(self):
        _, page = load_page(
            '<div id="slot"></div>'
            '<script src="https://fx.net/e.js"></script>',
            {
                "fx.net": [
                    {"op": "append-html", "target": "#slot",
                     "html": "<p>injected</p>"}
                ]
            },
        )
        slot = page.document.get_element_by_id("slot")
        assert "injected" in slot.text_content()

    def test_append_html_missing_target_is_noop(self):
        _, page = load_page(
            '<script src="https://fx.net/e.js"></script>',
            {"fx.net": [{"op": "append-html", "target": "#ghost",
                         "html": "<p>lost</p>"}]},
        )
        assert "lost" not in page.visible_text()

    def test_injected_resources_are_loaded(self):
        net = Network()
        net.register(
            "site.de",
            StaticServer('<script src="https://fx.net/e.js"></script>'),
        )
        net.register(
            "fx.net",
            EffectServer(
                [{"op": "append-html",
                  "html": '<img src="https://pix.net/p.gif">'}]
            ),
        )
        net.register("pix.net", StaticServer("gif"))
        browser = Browser(net, VANTAGE_POINTS["DE"])
        page = browser.visit("site.de")
        assert any("pix.net" in str(r.url) for r in page.requests)

    def test_remove_effect(self):
        _, page = load_page(
            '<div class="promo">ad</div>'
            '<script src="https://fx.net/e.js"></script>',
            {"fx.net": [{"op": "remove", "target": ".promo"}]},
        )
        assert "ad" not in page.visible_text()

    def test_set_flag(self):
        _, page = load_page(
            '<script src="https://fx.net/e.js"></script>',
            {"fx.net": [{"op": "set-flag", "key": "marker", "value": 7}]},
        )
        assert page.flags["marker"] == 7

    def test_lock_scroll_sets_body_style(self):
        _, page = load_page(
            '<script src="https://fx.net/e.js"></script>',
            {"fx.net": [{"op": "lock-scroll"}]},
        )
        assert page.scroll_locked
        assert not page.is_scrollable()
        assert "overflow:hidden" in (page.document.body.get_attribute("style") or "")

    def test_if_blocked_else_branch(self):
        _, page = load_page(
            '<script src="https://fx.net/e.js"></script>',
            {
                "fx.net": [
                    {"op": "if-blocked", "pattern": "never-blocked",
                     "then": [{"op": "set-flag", "key": "then"}],
                     "else": [{"op": "set-flag", "key": "else"}]}
                ]
            },
        )
        assert "else" in page.flags and "then" not in page.flags

    def test_set_page_cookie_requires_name(self):
        _, page = load_page("<p>x</p>")
        runtime = EffectRuntime(page)
        with pytest.raises(ParseError):
            runtime.apply([{"op": "set-page-cookie"}])

    def test_unknown_op_raises(self):
        _, page = load_page("<p>x</p>")
        runtime = EffectRuntime(page)
        with pytest.raises(ParseError):
            runtime.apply([{"op": "teleport"}])


class TestPipelineEdgeCases:
    def test_frame_depth_limit(self):
        # A frame that embeds itself would recurse forever without a cap.
        net = Network()
        net.register(
            "site.de",
            StaticServer('<iframe src="https://loop.net/f"></iframe>'),
        )
        net.register(
            "loop.net",
            StaticServer('<iframe src="https://loop.net/f"></iframe>'),
        )
        browser = Browser(net, VANTAGE_POINTS["DE"])
        page = browser.visit("site.de")  # must terminate
        assert page.status == 200

    def test_duplicate_elements_fetched_once(self):
        net = Network()

        class CountingServer(OriginServer):
            def __init__(self):
                self.hits = 0

            def handle(self, request, visitor):
                self.hits += 1
                return self.pixel(request)

        counter = CountingServer()
        net.register("site.de", StaticServer(
            '<img id="i" src="https://pix.net/p.gif">'
        ))
        net.register("pix.net", counter)
        browser = Browser(net, VANTAGE_POINTS["DE"])
        browser.visit("site.de")
        assert counter.hits == 1

    def test_stylesheet_links_fetched(self):
        net = Network()
        net.register(
            "site.de",
            StaticServer('<link rel="stylesheet" href="https://cdn.net/a.css">'),
        )
        net.register("cdn.net", StaticServer("body{}"))
        browser = Browser(net, VANTAGE_POINTS["DE"])
        page = browser.visit("site.de")
        assert any(r.resource_type == "stylesheet" for r in page.requests)

    def test_non_stylesheet_links_ignored(self):
        net = Network()
        net.register(
            "site.de",
            StaticServer('<link rel="icon" href="https://cdn.net/i.png">'),
        )
        browser = Browser(net, VANTAGE_POINTS["DE"])
        page = browser.visit("site.de")
        assert len(page.requests) == 1  # only the document

    def test_server_error_page_raises(self):
        net = Network()
        net.register("site.de", StaticServer("boom", status=500))
        browser = Browser(net, VANTAGE_POINTS["DE"])
        from repro.errors import NavigationError

        with pytest.raises(NavigationError):
            browser.visit("site.de")

    def test_404_page_returned(self):
        net = Network()
        net.register("site.de", StaticServer("gone", status=404))
        browser = Browser(net, VANTAGE_POINTS["DE"])
        page = browser.visit("site.de")
        assert page.status == 404

    def test_all_documents_iterates_frames(self):
        html = (
            '<iframe srcdoc="&lt;iframe srcdoc=&amp;quot;&lt;p&gt;deep'
            '&lt;/p&gt;&amp;quot;&gt;&lt;/iframe&gt;"></iframe>'
        )
        _, page = load_page(html)
        docs = list(page.all_documents())
        assert len(docs) >= 2
