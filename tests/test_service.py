"""The campaign service: lifecycle, quotas, priorities, crash/resume.

In-process tests drive a :class:`CampaignService` on an ephemeral port
through the stdlib :class:`ServiceClient`; the crash test runs the
real ``serve`` CLI verb in a subprocess, SIGKILLs it mid-campaign, and
restarts it with ``--resume`` — the campaign must finish from its
checkpoint fingerprints, not start over.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import RunSpec, WorldSpec
from repro.api.spec import CrawlSpec, EngineSpec, MultiVantageSpec
from repro.service import (
    CampaignService,
    Job,
    JobQueue,
    QuotaExceeded,
    ServiceClient,
    ServiceError,
    job_id,
)

def crawl_spec(seed=11, **world) -> RunSpec:
    return RunSpec(
        kind="crawl",
        world=WorldSpec(scale=0.01, seed=seed, **world),
        crawl=CrawlSpec(vps=("DE",)),
    )


@pytest.fixture()
def service(tmp_path):
    started = CampaignService(tmp_path / "data", port=0).start()
    yield started
    started.stop()


@pytest.fixture()
def client(service):
    return ServiceClient(service.url)


# ---------------------------------------------------------------------------
# Queue semantics (no HTTP involved)
# ---------------------------------------------------------------------------
class TestJobQueue:
    @staticmethod
    def job(seed, tenant="t", priority=0):
        spec = crawl_spec(seed)
        return Job(
            id=job_id(spec, tenant), spec=spec,
            tenant=tenant, priority=priority,
        )

    def test_priority_then_fifo_order(self):
        queue = JobQueue(quota=10)
        first = queue.submit(self.job(1, priority=0))
        urgent = queue.submit(self.job(2, priority=5))
        second = queue.submit(self.job(3, priority=0))
        claimed = [queue.next_job(timeout=0.01) for _ in range(3)]
        assert [job.id for job in claimed] == [
            urgent.id, first.id, second.id
        ]
        assert all(job.state == "running" for job in claimed)

    def test_quota_counts_active_jobs_per_tenant(self):
        queue = JobQueue(quota=2)
        queue.submit(self.job(1))
        queue.submit(self.job(2))
        with pytest.raises(QuotaExceeded, match="quota 2"):
            queue.submit(self.job(3))
        # Another tenant is unaffected.
        queue.submit(self.job(3, tenant="other"))
        # Finishing a job frees the slot.
        done = queue.next_job(timeout=0.01)
        done.state = "done"
        queue.submit(self.job(4))

    def test_submit_is_idempotent_for_known_ids(self):
        queue = JobQueue(quota=1)
        job = self.job(1)
        assert queue.submit(job) is queue.submit(self.job(1))

    def test_cancel_queued_job_never_runs(self):
        queue = JobQueue(quota=10)
        doomed = queue.submit(self.job(1))
        survivor = queue.submit(self.job(2))
        assert queue.cancel(doomed.id).state == "cancelled"
        assert queue.next_job(timeout=0.01) is survivor
        assert queue.next_job(timeout=0.01) is None


# ---------------------------------------------------------------------------
# HTTP lifecycle
# ---------------------------------------------------------------------------
class TestServiceLifecycle:
    def test_health_reports_schema_version(self, client):
        from repro.api import SPEC_SCHEMA_VERSION

        health = client.health()
        assert health["ok"] is True
        assert health["spec_schema_version"] == SPEC_SCHEMA_VERSION

    def test_submit_status_stream(self, service, client):
        job = client.submit(crawl_spec(), tenant="alice", priority=1)
        assert job["state"] in ("queued", "running")
        final = client.wait(job["id"], timeout=120)
        assert final["state"] == "done"
        assert final["summary"]["record_count"] > 0
        assert final["summary"]["failures"] == 0
        records = client.records(job["id"])
        assert records.count(b"\n") == final["summary"]["record_count"]
        for line in records.splitlines()[:5]:
            json.loads(line)
        listing = client.campaigns()["campaigns"]
        assert [j["id"] for j in listing] == [job["id"]]
        # Resubmitting the identical campaign is idempotent: same
        # content-addressed id, still done, nothing re-runs.
        again = client.submit(crawl_spec(), tenant="alice")
        assert again["id"] == job["id"]
        assert again["state"] == "done"

    def test_records_of_unfinished_campaign_conflict(self, service, client):
        # Submitted but executing (or queued): records are not ready.
        job = client.submit(crawl_spec(seed=77))
        with pytest.raises(ServiceError) as excinfo:
            client.records(job["id"])
        assert excinfo.value.status == 409
        client.wait(job["id"], timeout=120)

    def test_unknown_campaign_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.status("feedfacecafe")
        assert excinfo.value.status == 404

    def test_future_schema_version_rejected_readably(self, service):
        payload = crawl_spec().to_dict()
        payload["schema_version"] = 99
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/campaigns", {"spec": payload})
        assert excinfo.value.status == 400
        assert "schema_version 99" in str(excinfo.value)

    def test_invalid_spec_rejected_with_400(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "POST", "/v1/campaigns",
                {"spec": {"kind": "teleport"}},
            )
        assert excinfo.value.status == 400

    def test_quota_maps_to_429(self, tmp_path):
        service = CampaignService(
            tmp_path / "q", port=0, quota=1
        ).start()
        try:
            client = ServiceClient(service.url)
            client.submit(crawl_spec(seed=1), tenant="bob")
            with pytest.raises(ServiceError) as excinfo:
                client.submit(crawl_spec(seed=2), tenant="bob")
            assert excinfo.value.status == 429
            # Other tenants are unaffected by bob's quota.
            client.submit(crawl_spec(seed=2), tenant="carol")
        finally:
            service.stop()

    def test_cancel_queued_campaign(self, service, client):
        # The first campaign occupies the single runner; the second is
        # deterministically still queued when the cancel arrives.
        running = client.submit(crawl_spec(seed=5))
        queued = client.submit(crawl_spec(seed=6))
        cancelled = client.cancel(queued["id"])
        assert cancelled["state"] in ("queued", "cancelled")
        final = client.wait(queued["id"], timeout=120)
        assert final["state"] == "cancelled"
        assert client.wait(running["id"], timeout=120)["state"] == "done"

    def test_cancel_running_campaign(self, service, client):
        # A multi-wave campaign is long enough to cancel mid-flight.
        spec = RunSpec(
            kind="multivantage",
            world=WorldSpec(scale=0.05, seed=3),
            multivantage=MultiVantageSpec(months=(0, 2, 4)),
        )
        job = client.submit(spec)
        deadline = time.monotonic() + 60
        while client.status(job["id"])["state"] == "queued":
            assert time.monotonic() < deadline, "never started"
            time.sleep(0.02)
        client.cancel(job["id"])
        final = client.wait(job["id"], timeout=120)
        assert final["state"] == "cancelled"


# ---------------------------------------------------------------------------
# Crash + --resume via the real CLI
# ---------------------------------------------------------------------------
class TestServiceCrashResume:
    @staticmethod
    def _serve(data_dir, *extra):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else src
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--data-dir", str(data_dir), "--port", "0", *extra],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        banner = process.stdout.readline()
        assert "listening on" in banner, banner
        url = banner.split("listening on ")[1].split()[0]
        return process, url

    def test_sigkilled_campaign_resumes_from_checkpoint(self, tmp_path):
        data_dir = tmp_path / "data"
        spec = RunSpec(
            kind="multivantage",
            world=WorldSpec(scale=0.02, seed=7),
            # Many shards so the engine checkpoints per-shard progress
            # long before the wave completes.
            engine=EngineSpec(workers=2, shards=12, executor="thread"),
            multivantage=MultiVantageSpec(months=(0, 2)),
        )
        process, url = self._serve(data_dir)
        try:
            client = ServiceClient(url)
            job = client.submit(spec)
            campaign_dir = data_dir / "campaigns" / job["id"]
            deadline = time.monotonic() + 120
            # Wait for real checkpointed progress — at least one shard
            # entry beyond the header line — then pull the plug.
            def checkpointed_shards():
                return sum(
                    max(0, path.read_bytes().count(b"\n") - 1)
                    for path in campaign_dir.glob("wave-*.checkpoint")
                )

            while checkpointed_shards() == 0:
                assert time.monotonic() < deadline, "no checkpoint appeared"
                assert process.poll() is None
                time.sleep(0.005)
            assert client.status(job["id"])["state"] == "running"
            os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=10)
        finally:
            if process.poll() is None:
                process.kill()

        # The persisted job is still marked active from the dead server.
        persisted = json.loads(
            (data_dir / "jobs" / f"{job['id']}.json").read_text()
        )
        assert persisted["state"] in ("queued", "running")

        process, url = self._serve(data_dir, "--resume")
        try:
            client = ServiceClient(url)
            final = client.wait(job["id"], timeout=300, poll=0.2)
            assert final["state"] == "done"
            assert final["summary"]["resumed"] > 0, (
                "restart re-ran the whole campaign instead of resuming "
                "from its checkpoint fingerprint"
            )
            records = client.records(job["id"])
            assert records.count(b"\n") == final["summary"]["record_count"]
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
