"""Tests for statistics and table/figure computation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.figures import (
    Figure2,
    PriceRecord,
    compute_fig1,
    compute_fig2,
    compute_fig3,
    compute_fig4,
    compute_fig6,
)
from repro.analysis.stats import ecdf, ecdf_at, mean, median, pearson, quantile
from repro.categorize import WebFilterDB
from repro.errors import AnalysisError
from repro.measure.records import CookieMeasurement, VisitRecord


class TestStats:
    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == 2.5

    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_empty_raises(self):
        for fn in (median, mean, ecdf):
            with pytest.raises(AnalysisError):
                fn([])

    def test_quantile(self):
        data = [1, 2, 3, 4, 5]
        assert quantile(data, 0.0) == 1
        assert quantile(data, 1.0) == 5
        assert quantile(data, 0.5) == 3

    def test_quantile_bad_q(self):
        with pytest.raises(AnalysisError):
            quantile([1], 1.5)

    def test_ecdf_monotone(self):
        points = ecdf([3, 1, 2, 2])
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_ecdf_at(self):
        assert ecdf_at([1, 2, 3, 4], 2) == 0.5

    def test_pearson_perfect(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert pearson([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_pearson_degenerate(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50))
    def test_property_median_bounds(self, values):
        m = median(values)
        assert min(values) <= m <= max(values)

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=2, max_size=40))
    def test_property_ecdf_final_is_one(self, values):
        assert ecdf(values)[-1][1] == pytest.approx(1.0)


class TestFigureComputation:
    def test_fig1_shares_sum_to_one(self):
        db = WebFilterDB({"a.de": "Sports", "b.de": "Games", "c.de": "Sports"})
        figure = compute_fig1(["a.de", "b.de", "c.de"], db)
        assert sum(s for _, s in figure.shares) == pytest.approx(1.0)
        assert figure.share_of("Sports") == pytest.approx(2 / 3)
        assert "Sports" in figure.render()

    def test_fig2_extraction_and_buckets(self):
        records = [
            VisitRecord(vp="DE", domain="a.de", is_cookiewall=True,
                        banner_text="Pur-Abo für 2,99 € im Monat"),
            VisitRecord(vp="DE", domain="b.com", is_cookiewall=True,
                        banner_text="subscribe for $9.75 per month"),
            VisitRecord(vp="DE", domain="c.de", is_cookiewall=True,
                        banner_text="no price at all"),
        ]
        figure = compute_fig2(records)
        assert len(figure.records) == 2
        assert figure.unparsed_domains == ["c.de"]
        assert figure.heatmap["de"][3] == 1
        assert figure.modal_bucket() in (3, 9)
        assert 0 < figure.fraction_at_most(3.0) < 1

    def test_fig3_groups_by_category(self):
        figure2 = Figure2(records=[
            PriceRecord("a.de", "de", 299),
            PriceRecord("b.de", "de", 499),
        ])
        db = WebFilterDB({"a.de": "Sports", "b.de": "Sports"})
        figure = compute_fig3(figure2, db)
        assert figure.mean_price("Sports") == pytest.approx(3.99)

    def test_fig4_ratios(self):
        regular = [
            CookieMeasurement(vp="DE", domain=f"r{i}.de", mode="accept",
                              avg_first_party=15, avg_third_party=7,
                              avg_tracking=1)
            for i in range(5)
        ]
        walls = [
            CookieMeasurement(vp="DE", domain=f"w{i}.de", mode="accept",
                              avg_first_party=19, avg_third_party=49,
                              avg_tracking=42)
            for i in range(5)
        ]
        comparison = compute_fig4(regular, walls)
        assert comparison.medians("a") == (15, 7, 1)
        assert comparison.ratio("third_party") == pytest.approx(7.0)
        assert comparison.ratio("tracking") == pytest.approx(42.0)
        assert "Cookiewall" in comparison.render()

    def test_fig6_no_points_zero_correlation(self):
        figure = compute_fig6([], Figure2())
        assert figure.correlation == 0.0

    def test_fig6_joins_on_domain(self):
        measurements = [
            CookieMeasurement(vp="DE", domain="a.de", mode="accept",
                              avg_tracking=40),
            CookieMeasurement(vp="DE", domain="missing.de", mode="accept",
                              avg_tracking=10),
        ]
        figure2 = Figure2(records=[PriceRecord("a.de", "de", 299)])
        figure = compute_fig6(measurements, figure2)
        assert figure.points == [(40, 2.99)]


class TestTable1:
    def test_table1_on_medium_world(self, medium_world, medium_context):
        from repro.analysis.tables import compute_table1

        table = compute_table1(medium_world, medium_context.detection_crawl())
        de_row = table.row("DE")
        se_row = table.row("SE")
        use_row = table.row("USE")
        # Germany sees every wall (plus bait FPs); others see fewer.
        assert de_row.cookiewalls >= se_row.cookiewalls >= use_row.cookiewalls
        assert de_row.toplist > 0
        assert use_row.toplist == 0
        assert use_row.cctld == 0
        assert de_row.cctld > 0
        rendered = table.render()
        assert "Frankfurt" in rendered and "Unique cookiewall" in rendered
