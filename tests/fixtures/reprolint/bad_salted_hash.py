# lint-as: src/repro/webgen/fixture_banners.py
# expect: salted-hash
"""A reintroduced per-process-salted hash()-derived seed (the PR 7 bug)."""


def banner_variant(domain: str, variants: int) -> int:
    # Salted per process: two workers disagree on the variant.
    return hash(domain) % variants


def cmp_vendor_seed(domain: str) -> int:
    return hash((domain, "cmp")) & 0xFFFF
