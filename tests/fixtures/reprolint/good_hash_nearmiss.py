# lint-as: src/repro/webgen/fixture_banners_ok.py
# expect: clean
"""Near-misses: __hash__ definitions and stable derivations are fine."""

import zlib

from repro.rng import derive_seed


class SeedKey:
    def __init__(self, seed: int) -> None:
        self.seed = seed

    def __hash__(self) -> int:
        # hash() inside __hash__ never leaks into records.
        return hash(("SeedKey", self.seed))


def banner_variant(world_seed: int, domain: str, variants: int) -> int:
    return derive_seed(world_seed, "banner-variant", domain) % variants


def shard_of(domain: str, shards: int) -> int:
    return zlib.crc32(domain.encode("utf-8")) % shards
