# lint-as: src/repro/measure/fixture_worker.py
# expect: broad-except
"""A worker loop that eats arbitrary faults: the silent-task-loss bug."""


def run_tasks(tasks, run_one):
    outcomes = []
    for task in tasks:
        try:
            outcomes.append(run_one(task))
        except Exception:
            # The fault vanishes: no retry, no degraded record, no
            # taxonomy entry — the merge just comes up one task short.
            continue
    return outcomes


def drain(queue):
    while True:
        try:
            queue.pop()
        except:  # noqa: E722
            break
