# lint-as: src/repro/vantage/fixture_regions.py
# expect: set-iteration
"""Bare-set iteration order reaching output."""


def region_lines(extra: str) -> list:
    lines = []
    for region in {"DE", "US", extra}:
        lines.append(f"region={region}")
    return lines


def header_value(domains) -> str:
    return ",".join(set(domains))


def as_list(codes) -> list:
    return list({code.upper() for code in codes})
