# lint-as: src/repro/measure/fixture_visits_ok.py
# expect: clean
"""Near-misses: seeded streams, digest uuids, and durations are fine."""

import random
import time
import uuid

from repro.rng import derive_seed


def visit_rng(world_seed: int, domain: str) -> random.Random:
    return random.Random(derive_seed(world_seed, "visit", domain))


def stable_id(domain: str) -> uuid.UUID:
    # uuid5 is a namespace digest, deterministic for a given name.
    return uuid.uuid5(uuid.NAMESPACE_DNS, domain)


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started
