# lint-as: src/repro/adblock/fixture_hits_ok.py
# expect: clean
"""Near-miss: consistent locking, plus the sanctioned conventions."""

import threading
from collections import Counter


class HitTracker:
    def __init__(self) -> None:
        # Construction happens before the object is shared.
        self.hit_counts: Counter = Counter()
        self.labels: dict = {}
        self._hits_lock = threading.Lock()

    def record_hit(self, rule: str) -> None:
        with self._hits_lock:
            self.hit_counts[rule] += 1

    def record_many(self, rules) -> None:
        with self._hits_lock:
            for rule in rules:
                self._bump_locked(rule)

    def _bump_locked(self, rule: str) -> None:
        # *_locked convention: the caller holds _hits_lock.
        self.hit_counts[rule] += 1

    def reset(self) -> None:
        # Rebinding is construction, not an in-place read-modify-write.
        self.hit_counts = Counter()

    def label(self, rule: str, text: str) -> None:
        # Never mutated under the lock anywhere -> not a guarded attr.
        self.labels[rule] = text
