# lint-as: src/repro/webgen/fixture_pragma_stale.py
# expect: unused-suppression
"""A pragma that suppresses nothing has rotted and is flagged."""

import zlib


def stable_bucket(domain: str) -> int:
    return zlib.crc32(domain.encode()) % 16  # reprolint: disable=salted-hash -- fixture: nothing here triggers the rule any more
