# lint-as: src/repro/measure/fixture_visits.py
# expect: unseeded-entropy
"""Every flavour of unseeded entropy the rule must catch."""

import os
import random
import secrets
import time
import uuid
from datetime import datetime


def visit_id() -> str:
    return str(uuid.uuid4())


def jitter() -> float:
    return random.random()


def fresh_rng() -> random.Random:
    return random.Random()


def nonce() -> bytes:
    return os.urandom(8)


def token() -> str:
    return secrets.token_hex(4)


def stamp() -> float:
    return time.time()


def when() -> str:
    return datetime.now().isoformat()
