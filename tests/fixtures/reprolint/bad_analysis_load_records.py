# lint-as: src/repro/analysis/fixture_tables.py
# expect: materialized-records
"""The original sin: materialising a record file inside analysis/."""

import json

from repro.measure.storage import load_records


def wall_rate(path) -> float:
    records = load_records(path)
    walls = sum(1 for record in records if getattr(record, "wall", False))
    return walls / max(len(records), 1)


def load_manifest(path) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
