# lint-as: src/repro/webgen/fixture_pragma_bad.py
# expect: salted-hash bad-pragma
"""A pragma without a justification suppresses nothing and is flagged."""


def legacy_bucket(domain: str) -> int:
    return hash(domain) % 16  # reprolint: disable=salted-hash
