# lint-as: src/repro/measure/fixture_worker_ok.py
# expect: clean
"""Near-misses: broad handlers that propagate or record the fault."""


def run_tasks(tasks, run_one, degraded_record):
    outcomes = []
    for task in tasks:
        try:
            outcomes.append(run_one(task))
        except Exception as exc:
            # The fault becomes a deterministic partial record carrying
            # its taxonomy name — nothing is lost from the merge.
            outcomes.append(degraded_record(task, type(exc).__name__))
    return outcomes


def guarded(fn):
    try:
        return fn()
    except Exception:
        # Re-raising keeps the fault on the retry layer's path.
        raise


def narrow(fetch, request):
    try:
        return fetch(request)
    except ValueError:
        # Narrow types are out of scope for the rule entirely.
        return None
