# lint-as: src/repro/measure/fixture_bundle_ok.py
# expect: clean
# pickle-roots: ShardBundle
"""Near-miss: a fully picklable bundle graph.

Module-level functions pickle by reference; ``default_factory``
lambdas build picklable *values*; and a lock in an unrelated,
unreachable class is none of the bundle's business.
"""

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


def ignore_error(error) -> None:
    return None


@dataclass
class ShardDetector:
    threshold: float = 0.5
    labels: Dict[str, int] = field(default_factory=dict)


@dataclass
class ShardBundle:
    tasks: List[str] = field(default_factory=list)
    detector: Optional[ShardDetector] = None
    on_error: Callable = ignore_error
    extras: Dict[str, int] = field(default_factory=lambda: {"retries": 2})


class UnrelatedCache:
    """Not reachable from ShardBundle; its lock must not be flagged."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.entries: Dict[str, str] = {}
