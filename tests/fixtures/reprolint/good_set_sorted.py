# lint-as: src/repro/vantage/fixture_regions_ok.py
# expect: clean
"""Near-misses: sorted sets, membership, and unordered reductions."""


def region_lines(extra: str) -> list:
    return [f"region={region}" for region in sorted({"DE", "US", extra})]


def header_value(domains) -> str:
    return ",".join(sorted(set(domains)))


def is_eu(code: str) -> bool:
    return code in {"DE", "FR", "IT"}


def distinct(codes) -> int:
    return len({code.upper() for code in codes})
