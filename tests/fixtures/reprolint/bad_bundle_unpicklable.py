# lint-as: src/repro/measure/fixture_bundle.py
# expect: bundle-pickle-safety
# pickle-roots: ShardBundle
"""A lambda (and friends) smuggled into the shard bundle type graph."""

import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class ShardDetector:
    """Reached from ShardBundle via the detector annotation."""

    threshold: float = 0.5

    def __post_init__(self) -> None:
        self._guard = threading.Lock()


@dataclass
class ShardBundle:
    """The bundle root the rule walks."""

    tasks: List[str] = field(default_factory=list)
    detector: Optional[ShardDetector] = None
    on_error: Callable = lambda error: None
    progress: Callable = field(default=lambda done: None)
