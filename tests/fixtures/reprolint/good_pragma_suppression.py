# lint-as: src/repro/webgen/fixture_pragma_ok.py
# expect: clean
"""A justified pragma suppresses its finding (trailing and standalone)."""


def legacy_bucket(domain: str) -> int:
    return hash(domain) % 16  # reprolint: disable=salted-hash -- fixture: value never leaves this process, feeds a local cache only


def legacy_variant(domain: str) -> int:
    # reprolint: disable=salted-hash -- fixture: standalone pragma guards the next line
    return hash(domain) % 4
