# lint-as: src/repro/analysis/fixture_tables_ok.py
# expect: clean
"""Near-miss: single-pass streaming aggregation, json.loads per line."""

import json

from repro.measure.storage import iter_records


def wall_rate(path) -> float:
    walls = total = 0
    for record in iter_records(path):
        total += 1
        if getattr(record, "wall", False):
            walls += 1
    return walls / max(total, 1)


def parse_line(line: str) -> dict:
    # json.loads on one line is the streaming decode, not a whole file.
    return json.loads(line)
