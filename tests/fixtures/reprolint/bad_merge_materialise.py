# lint-as: benchmarks/fixture_bench_merge.py
# expect: materialized-records
"""Materialising call patterns on a merge/benchmark path."""

from repro.measure.storage import iter_records


def count_slow(path) -> int:
    return len(list(iter_records(path)))


def lines(path) -> list:
    with open(path, encoding="utf-8") as handle:
        return handle.readlines()
