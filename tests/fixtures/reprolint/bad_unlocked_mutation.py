# lint-as: src/repro/adblock/fixture_hits.py
# expect: unlocked-mutation
"""The pre-PR-4 lost-update bug: a guarded Counter bumped lock-free."""

import threading
from collections import Counter


class HitTracker:
    def __init__(self) -> None:
        self.hit_counts: Counter = Counter()
        self._hits_lock = threading.Lock()

    def record_hit(self, rule: str) -> None:
        with self._hits_lock:
            self.hit_counts[rule] += 1

    def record_hit_fast(self, rule: str) -> None:
        # Data race: same attribute, no lock — two worker threads lose
        # increments exactly the way the PR 4 fix prevented.
        self.hit_counts[rule] += 1

    def forget(self, rule: str) -> None:
        self.hit_counts.pop(rule, None)
