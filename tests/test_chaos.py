"""The chaos differential oracle, per executor backend.

The load-bearing invariant of the resilience plane: a run under a
seeded chaos regime whose faults are all *recoverable* produces a
spool **byte-identical** to the fault-free run — across every executor
backend, worker count, and kill/resume — while a regime with
*unrecoverable* faults produces deterministic degraded output (same
bytes on every backend, record count still equal to the plan size).
Storage-layer chaos rides along: torn shard spools and torn checkpoint
tails must be tolerated, never silently dropped.

Like ``test_executor_backends.py``, CI runs this module once per
backend (``REPRO_EXECUTOR_BACKEND=serial|thread|process``) under
pinned chaos seeds; locally, with the variable unset, every backend
runs in one pass.
"""

import json
import os

import pytest

from repro.measure import (
    EXECUTOR_BACKENDS,
    CrawlEngine,
    Crawler,
    FaultInjectingExecutor,
    FaultInjectingProcessExecutor,
    RetryPolicy,
)
from repro.measure.storage import (
    TornRecordWarning,
    iter_records,
    merge_record_spools,
    torn_line_count,
)
from repro.resilience.chaos import ChaosSpec, tear_trailing_line

_ENV_BACKEND = os.environ.get("REPRO_EXECUTOR_BACKEND")
BACKENDS = (_ENV_BACKEND,) if _ENV_BACKEND else EXECUTOR_BACKENDS

SHARDS = 6
WORKERS = 3

#: The pinned chaos regimes of the oracle.  RECOVERABLE's rates are
#: low enough (and the retry budget generous enough) that no task
#: exhausts its attempts; UNRECOVERABLE mixes in permanent faults that
#: deterministically do.
RECOVERABLE = ChaosSpec(
    seed=99, timeout_rate=0.05, dns_rate=0.03, disconnect_rate=0.03,
    truncate_rate=0.02,
)
UNRECOVERABLE = ChaosSpec(
    seed=99, timeout_rate=0.05, dns_rate=0.03, permanent_rate=0.15,
)

#: Fault-free twin of the chaos plans: a seeded-but-silent spec keeps
#: the visit-id regime (and hence the record bytes) comparable.
IDLE = ChaosSpec(seed=99)


def make_engine(backend, crawler, **kwargs):
    workers = 1 if backend == "serial" else WORKERS
    return CrawlEngine(
        crawler, workers=workers, shards=SHARDS, backend=backend, **kwargs
    )


def chaos_execute(engine, plan_factory, spec):
    """Execute a fresh plan carrying *spec*'s chaos context."""
    plan = plan_factory()
    if spec is not None:
        plan.context["chaos"] = spec.to_context()
    return engine.execute(plan)


@pytest.fixture(scope="module")
def chaos_crawler(small_world):
    return Crawler(small_world)


@pytest.fixture(scope="module")
def plan_factory(small_world, chaos_crawler):
    def factory():
        return chaos_crawler.plan_detection_crawl(
            ["DE", "USE"], small_world.crawl_targets[:16]
        )
    return factory


@pytest.fixture(scope="module")
def fault_free_reference(tmp_path_factory, chaos_crawler, plan_factory):
    """The spool every recoverable-chaos run must reproduce byte-wise."""
    path = tmp_path_factory.mktemp("reference") / "fault-free.jsonl"
    result = chaos_execute(
        CrawlEngine(chaos_crawler, spool_path=path), plan_factory, IDLE
    )
    assert not result.failures
    return path.read_bytes()


@pytest.fixture(scope="module")
def unrecoverable_reference(tmp_path_factory, chaos_crawler, plan_factory):
    """The serial spool of the pinned unrecoverable regime."""
    path = tmp_path_factory.mktemp("reference") / "degraded.jsonl"
    result = chaos_execute(
        CrawlEngine(
            chaos_crawler, spool_path=path, retry=RetryPolicy(max_attempts=3)
        ),
        plan_factory, UNRECOVERABLE,
    )
    assert result.failures, "pinned unrecoverable regime produced no faults"
    assert result.record_count == len(plan_factory())
    return path.read_bytes()


def test_recoverable_regime_actually_injects(chaos_crawler, plan_factory):
    """Guard against a vacuous oracle: with retries disabled, the
    pinned recoverable regime visibly degrades tasks — so the
    byte-identity below really is recovery, not absence of faults."""
    result = chaos_execute(
        CrawlEngine(chaos_crawler, retry=RetryPolicy(max_attempts=1)),
        plan_factory, RECOVERABLE,
    )
    assert result.failures
    for outcome in result.failures:
        assert outcome.record is not None  # degraded, never lost


@pytest.mark.parametrize("backend", BACKENDS)
class TestDifferentialOracle:
    def test_recoverable_chaos_is_byte_invisible(
        self, backend, tmp_path, chaos_crawler, plan_factory,
        fault_free_reference,
    ):
        out = tmp_path / f"{backend}.jsonl"
        result = chaos_execute(
            make_engine(
                backend, chaos_crawler, spool_path=out,
                retry=RetryPolicy(max_attempts=8),
            ),
            plan_factory, RECOVERABLE,
        )
        assert not result.failures
        assert out.read_bytes() == fault_free_reference

    def test_unrecoverable_chaos_is_deterministic(
        self, backend, tmp_path, chaos_crawler, plan_factory,
        unrecoverable_reference,
    ):
        out = tmp_path / f"{backend}.jsonl"
        result = chaos_execute(
            make_engine(
                backend, chaos_crawler, spool_path=out,
                retry=RetryPolicy(max_attempts=3),
            ),
            plan_factory, UNRECOVERABLE,
        )
        assert result.record_count == len(plan_factory())
        assert out.read_bytes() == unrecoverable_reference
        degraded = [
            record for record in iter_records(out)
            if record.flags.get("degraded")
        ]
        assert len(degraded) == len(result.failures) > 0

    def test_crashed_recoverable_run_resumes_byte_identical(
        self, backend, tmp_path, chaos_crawler, plan_factory,
        fault_free_reference,
    ):
        """Kill part of a recoverable-chaos run, resume it: re-crawled
        tasks re-fault and re-recover (the consumed-fault set is
        per-run), so the final spool still equals the fault-free one."""
        out = tmp_path / "crashed.jsonl"
        checkpoint = tmp_path / "crashed.jsonl.checkpoint"
        if backend == "process":
            executor = FaultInjectingProcessExecutor(1, (1, 4))
        else:
            executor = FaultInjectingExecutor(
                1 if backend == "serial" else WORKERS, (1, 4), partial=True
            )
        engine = make_engine(
            backend, chaos_crawler, spool_path=out,
            checkpoint_path=checkpoint, executor=executor,
            retry=RetryPolicy(max_attempts=8),
        )
        with pytest.raises(RuntimeError):
            chaos_execute(engine, plan_factory, RECOVERABLE)
        assert checkpoint.exists()

        result = chaos_execute(
            make_engine(
                backend, chaos_crawler, spool_path=out,
                checkpoint_path=checkpoint, resume=True,
                retry=RetryPolicy(max_attempts=8),
            ),
            plan_factory, RECOVERABLE,
        )
        assert result.resumed > 0
        assert not result.failures
        assert out.read_bytes() == fault_free_reference


# ---------------------------------------------------------------------------
# Breaker state across kill/resume
# ---------------------------------------------------------------------------

#: Six vantage points per target: enough same-domain tasks for the
#: pinned unrecoverable regime to walk breakers through their states.
BREAKER_VPS = ["AU", "BR", "DE", "IN", "SE", "USE"]

BREAKER_RETRY = dict(
    max_attempts=2, breaker_threshold=2, breaker_quarantine=2
)


@pytest.fixture(scope="module")
def breaker_chaos(small_world):
    """High-rate permanent faults pinned to three first-party domains:
    their task streaks deterministically walk the breakers while the
    other five domains crawl clean."""
    from repro.urlkit import registrable_domain

    return ChaosSpec(
        seed=43, timeout_rate=0.9, permanent_rate=0.9,
        domains=tuple(
            registrable_domain(target) or target
            for target in small_world.crawl_targets[:3]
        ),
    )


@pytest.fixture(scope="module")
def breaker_plan_factory(small_world, chaos_crawler):
    def factory():
        return chaos_crawler.plan_detection_crawl(
            BREAKER_VPS, small_world.crawl_targets[:8]
        )
    return factory


@pytest.fixture(scope="module")
def breaker_reference(
    tmp_path_factory, chaos_crawler, breaker_plan_factory, breaker_chaos,
):
    """Uninterrupted serial run of the breaker regime: spool bytes plus
    the final breaker-registry snapshots every crashed-and-resumed run
    must reproduce."""
    path = tmp_path_factory.mktemp("reference") / "breakers.jsonl"
    engine = CrawlEngine(
        chaos_crawler, spool_path=path, retry=RetryPolicy(**BREAKER_RETRY)
    )
    result = chaos_execute(engine, breaker_plan_factory, breaker_chaos)
    skipped = [
        o for o in result.failures if o.error == "BreakerOpenError"
    ]
    assert skipped, "pinned regime never tripped a breaker"
    snapshots = {
        domain: breaker.snapshot()
        for domain, breaker in engine._breakers.items()
        if breaker.snapshot()["state"] != "closed"
        or breaker.snapshot()["consecutive"]
    }
    assert snapshots, "no breaker accumulated state"
    return path.read_bytes(), snapshots


def _breaker_checkpoint_domains(checkpoint):
    domains = {}
    for line in checkpoint.read_text(encoding="utf-8").splitlines():
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            continue  # the torn tail some tests manufacture
        if payload.get("kind") == "breaker":
            domains.update(payload["domains"])
    return domains


@pytest.mark.parametrize("backend", BACKENDS)
def test_breaker_state_survives_kill_and_resume(
    backend, tmp_path, chaos_crawler, breaker_plan_factory, breaker_chaos,
    breaker_reference,
):
    """SIGKILL a worker mid-chaos (injected crash under
    threads/serial): the checkpoint carries the breaker line, the
    resumed run restores the registry instead of restarting it closed,
    and the final spool — including which tasks were breaker-skipped —
    is byte-identical to the uninterrupted run."""
    reference_bytes, reference_snapshots = breaker_reference
    out = tmp_path / "killed.jsonl"
    checkpoint = tmp_path / "killed.jsonl.checkpoint"
    if backend == "process":
        executor = FaultInjectingProcessExecutor(1, (SHARDS - 1,))
    else:
        executor = FaultInjectingExecutor(
            1 if backend == "serial" else WORKERS, (SHARDS - 1,),
            partial=True,
        )
    engine = make_engine(
        backend, chaos_crawler, spool_path=out, checkpoint_path=checkpoint,
        executor=executor, retry=RetryPolicy(**BREAKER_RETRY),
    )
    with pytest.raises(RuntimeError):
        chaos_execute(engine, breaker_plan_factory, breaker_chaos)
    # The interrupted checkpoint persisted breaker state alongside the
    # completed outcomes.
    assert _breaker_checkpoint_domains(checkpoint), (
        "checkpoint carries no breaker line"
    )

    resumed_engine = make_engine(
        backend, chaos_crawler, spool_path=out, checkpoint_path=checkpoint,
        resume=True, retry=RetryPolicy(**BREAKER_RETRY),
    )
    result = chaos_execute(resumed_engine, breaker_plan_factory, breaker_chaos)
    assert result.resumed > 0
    assert out.read_bytes() == reference_bytes
    final = {
        domain: breaker.snapshot()
        for domain, breaker in resumed_engine._breakers.items()
    }
    for domain, snapshot in reference_snapshots.items():
        assert final[domain] == snapshot


def test_compacted_checkpoint_keeps_breaker_state(
    tmp_path, chaos_crawler, breaker_plan_factory, breaker_chaos,
):
    """checkpoint compaction must consolidate, not drop, the breaker
    lines — a resume from a compacted checkpoint restores the same
    registry."""
    out = tmp_path / "run.jsonl"
    checkpoint = tmp_path / "run.jsonl.checkpoint"
    engine = CrawlEngine(
        chaos_crawler, spool_path=out, checkpoint_path=checkpoint,
        retry=RetryPolicy(**BREAKER_RETRY),
        executor=FaultInjectingExecutor(1, (0,), partial=True),
        shards=SHARDS,
    )
    with pytest.raises(RuntimeError):
        chaos_execute(engine, breaker_plan_factory, breaker_chaos)
    before = _breaker_checkpoint_domains(checkpoint)
    assert before
    stats = CrawlEngine.compact_checkpoint(checkpoint)
    assert stats.kept >= 0
    assert _breaker_checkpoint_domains(checkpoint) == before


# ---------------------------------------------------------------------------
# Storage-layer chaos: torn writes
# ---------------------------------------------------------------------------

class TestTornWrites:
    def test_tear_trailing_line_is_deterministic(self, tmp_path):
        path = tmp_path / "spool.jsonl"
        for _ in range(2):
            path.write_text('{"a": 1}\n{"b": 22222}\n', encoding="utf-8")
            cut = tear_trailing_line(path, seed=5)
            assert cut > 0
            torn = path.read_bytes()
            assert torn.startswith(b'{"a": 1}\n{')
            assert not torn.endswith(b"\n")
        # Same seed, same input -> same torn bytes.
        assert path.read_bytes() == torn

    def test_tear_refuses_untearable_file(self, tmp_path):
        path = tmp_path / "tiny.jsonl"
        path.write_text("x\n", encoding="utf-8")
        with pytest.raises(ValueError, match="no tearable trailing line"):
            tear_trailing_line(path, seed=1)

    def test_torn_shard_part_tolerated_in_kway_merge(
        self, tmp_path, chaos_crawler, plan_factory,
    ):
        """A worker that died mid-append leaves a torn .part tail; the
        k-way join must warn, skip exactly that line, and keep every
        intact record."""
        out = tmp_path / "run.jsonl"
        chaos_execute(
            CrawlEngine(chaos_crawler, spool_path=out), plan_factory, IDLE
        )
        lines = out.read_text(encoding="utf-8").splitlines()
        parts = []
        for shard, chunk in enumerate((lines[:10], lines[10:])):
            part = tmp_path / f"run.jsonl.shard{shard:04d}.part"
            part.write_text(
                "".join(
                    json.dumps(
                        {
                            "kind": "outcome",
                            "index": index,
                            "record": json.loads(line),
                        },
                        ensure_ascii=False,
                    ) + "\n"
                    for index, line in enumerate(
                        chunk, start=shard and 10
                    )
                ),
                encoding="utf-8",
            )
            parts.append(part)
        tear_trailing_line(parts[1], seed=7)

        merged = tmp_path / "merged.jsonl"
        before = torn_line_count()
        with pytest.warns(TornRecordWarning, match="torn trailing line"):
            count = merge_record_spools(parts, merged)
        assert torn_line_count() == before + 1
        assert count == len(lines) - 1
        assert merged.read_text(encoding="utf-8").splitlines() == (
            lines[:-1]
        )

    def test_torn_checkpoint_resumes_byte_identical(
        self, tmp_path, chaos_crawler, plan_factory, fault_free_reference,
    ):
        """Tearing the checkpoint's final line (crash between write and
        flush) loses at most that one outcome: the resume warns,
        re-crawls it, and the final spool is unchanged."""
        out = tmp_path / "torn.jsonl"
        checkpoint = tmp_path / "torn.jsonl.checkpoint"
        engine = CrawlEngine(
            chaos_crawler, spool_path=out, checkpoint_path=checkpoint,
            shards=SHARDS,
            executor=FaultInjectingExecutor(1, (SHARDS - 1,), partial=True),
            retry=RetryPolicy(max_attempts=8),
        )
        with pytest.raises(RuntimeError):
            chaos_execute(engine, plan_factory, RECOVERABLE)
        tear_trailing_line(checkpoint, seed=13)

        before = torn_line_count()
        with pytest.warns(TornRecordWarning, match="torn trailing line"):
            result = chaos_execute(
                CrawlEngine(
                    chaos_crawler, spool_path=out,
                    checkpoint_path=checkpoint, resume=True, shards=SHARDS,
                    retry=RetryPolicy(max_attempts=8),
                ),
                plan_factory, RECOVERABLE,
            )
        assert torn_line_count() == before + 1
        assert result.resumed > 0
        assert not result.failures
        assert out.read_bytes() == fault_free_reference
