"""The resilience layer: virtual time, backoff, breakers, degradation.

Unit coverage for :mod:`repro.resilience` plus the engine-level
contracts it exists for — no real sleeping anywhere, no task ever
silently lost, breaker state observable through events and restorable
from snapshots.  The chaos differential oracle itself lives in
``test_chaos.py``; this module pins the building blocks it composes.
"""

import time

import pytest

from repro.analysis import StreamingFailureTaxonomy
from repro.errors import (
    BreakerOpenError,
    DeadlineExceeded,
    DNSFlapError,
    NavigationError,
    ParseError,
    TimeoutError,
    error_category,
    is_transient,
)
from repro.measure import CrawlEngine, Crawler, RetryPolicy
from repro.measure.engine import CrawlTask, chaos_plan
from repro.measure.instrumentation import EventLog
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.chaos import ChaosSpec
from repro.resilience.clock import TaskMeter, VirtualClock, active_meter, spend
from repro.resilience.degrade import degraded_record


# ---------------------------------------------------------------------------
# Virtual time
# ---------------------------------------------------------------------------

class TestVirtualClock:
    def test_advances_without_sleeping(self):
        clock = VirtualClock()
        started = time.perf_counter()
        clock.sleep(3600.0)
        assert time.perf_counter() - started < 1.0
        assert clock.now() == 3600.0

    def test_ignores_non_positive(self):
        clock = VirtualClock()
        clock.advance(0.0)
        clock.advance(-5.0)
        assert clock.now() == 0.0

    def test_spend_charges_clock_and_active_meter(self):
        clock = VirtualClock()
        meter = TaskMeter()
        with active_meter(meter):
            spend(clock, 2.5)
        spend(clock, 1.0)  # no meter active: clock-only
        assert clock.now() == 3.5
        assert meter.cost == 2.5

    def test_spend_enforces_attempt_deadline(self):
        clock = VirtualClock()
        meter = TaskMeter(attempt_deadline=5.0)
        with active_meter(meter):
            spend(clock, 4.0)
            with pytest.raises(TimeoutError, match="virtual deadline"):
                spend(clock, 2.0)
            # A fresh attempt gets a fresh budget.
            meter.begin_attempt()
            spend(clock, 4.0)
        assert meter.cost == 10.0

    def test_meter_attempt_cost_resets_per_attempt(self):
        meter = TaskMeter()
        meter.begin_attempt()
        meter.charge(3.0)
        assert meter.attempt_cost == 3.0
        meter.begin_attempt()
        assert meter.attempt_cost == 0.0
        assert meter.cost == 3.0

    def test_active_meter_nests_and_restores(self):
        outer, inner = TaskMeter(), TaskMeter()
        clock = VirtualClock()
        with active_meter(outer):
            with active_meter(inner):
                spend(clock, 1.0)
            spend(clock, 1.0)
        assert inner.cost == 1.0
        assert outer.cost == 1.0


# ---------------------------------------------------------------------------
# Backoff schedule
# ---------------------------------------------------------------------------

class TestBackoffDelay:
    TASK = CrawlTask(vp="DE", domain="example.com")

    def test_deterministic(self):
        policy = RetryPolicy()
        assert policy.backoff_delay(self.TASK, 1) == policy.backoff_delay(
            self.TASK, 1
        )

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0, jitter=0.5)
        for attempt in (1, 2, 3):
            base = min(1.0 * 2.0 ** (attempt - 1), policy.backoff_max)
            delay = policy.backoff_delay(self.TASK, attempt)
            assert base * 0.5 <= delay <= base

    def test_caps_at_backoff_max(self):
        policy = RetryPolicy(
            backoff_base=1.0, backoff_factor=10.0, backoff_max=4.0, jitter=0.0
        )
        assert policy.backoff_delay(self.TASK, 5) == 4.0

    def test_zero_base_disables_backoff(self):
        policy = RetryPolicy(backoff_base=0.0)
        assert policy.backoff_delay(self.TASK, 3) == 0.0

    def test_jitter_varies_across_tasks_not_within(self):
        policy = RetryPolicy(jitter=1.0)
        other = CrawlTask(vp="USE", domain="other.org")
        assert policy.backoff_delay(self.TASK, 1) != policy.backoff_delay(
            other, 1
        )


# ---------------------------------------------------------------------------
# Circuit breakers
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker("a.com", threshold=3, quarantine=2)
        assert breaker.record(False) is None
        assert breaker.record(False) is None
        assert breaker.record(False) == "open"
        assert breaker.state == OPEN

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker("a.com", threshold=2, quarantine=1)
        breaker.record(False)
        breaker.record(True)
        assert breaker.record(False) is None
        assert breaker.state == CLOSED

    def test_quarantine_then_half_open_probe(self):
        breaker = CircuitBreaker("a.com", threshold=1, quarantine=2)
        breaker.record(False)
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN

    def test_probe_success_closes(self):
        breaker = CircuitBreaker("a.com", threshold=1, quarantine=1)
        breaker.record(False)
        breaker.allow()
        breaker.allow()
        assert breaker.record(True) == "close"
        assert breaker.state == CLOSED
        assert breaker.consecutive == 0

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker("a.com", threshold=2, quarantine=1)
        breaker.record(False)
        breaker.record(False)
        breaker.allow()
        breaker.allow()
        assert breaker.record(False) == "open"
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_snapshot_adopt_round_trip(self):
        breaker = CircuitBreaker("a.com", threshold=2, quarantine=3)
        breaker.record(False)
        breaker.record(False)
        breaker.allow()
        snapshot = breaker.snapshot()
        clone = CircuitBreaker(
            "a.com", threshold=2, quarantine=3, snapshot=snapshot
        )
        assert clone.state == breaker.state
        assert clone.consecutive == breaker.consecutive
        assert clone.skipped == breaker.skipped
        assert clone.snapshot() == snapshot

    def test_adopt_rejects_unknown_state(self):
        breaker = CircuitBreaker("a.com", threshold=1, quarantine=1)
        with pytest.raises(ValueError, match="unknown breaker state"):
            breaker.adopt({"state": "melted"})

    @pytest.mark.parametrize("kwargs", [
        {"threshold": 0, "quarantine": 1},
        {"threshold": 1, "quarantine": 0},
    ])
    def test_invalid_policy_refused(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker("a.com", **kwargs)


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------

class TestErrorTaxonomy:
    def test_is_transient_walks_the_cause_chain(self):
        try:
            try:
                raise TimeoutError("hung")
            except TimeoutError as exc:
                raise NavigationError("visit failed") from exc
        except NavigationError as wrapped:
            assert is_transient(wrapped)
        assert not is_transient(NavigationError("plain"))
        assert is_transient(DNSFlapError("flap"))
        assert not is_transient(ParseError("bad html"))

    def test_error_category(self):
        assert error_category("TimeoutError") == "transient"
        assert error_category("TruncatedResponseError") == "transient"
        assert error_category("BreakerOpenError") == "permanent"
        assert error_category("DeadlineExceeded") == "permanent"
        assert error_category("SomethingFromTheFuture") == "unknown"

    def test_breaker_and_deadline_errors_exist(self):
        # The degraded-record taxonomy names these classes literally.
        assert issubclass(BreakerOpenError, Exception)
        assert issubclass(DeadlineExceeded, Exception)


# ---------------------------------------------------------------------------
# Graceful degradation
# ---------------------------------------------------------------------------

class TestDegradedRecords:
    def test_detect_mode(self):
        task = CrawlTask(vp="DE", domain="a.com", mode="detect")
        record = degraded_record(task, "TimeoutError")
        assert record.vp == "DE"
        assert record.domain == "a.com"
        assert record.reachable is False
        assert record.error == "TimeoutError"
        assert record.flags.get("degraded") is True

    @pytest.mark.parametrize("mode", ["accept", "reject", "subscription"])
    def test_cookie_modes(self, mode):
        task = CrawlTask(vp="SE", domain="b.com", mode=mode, repeats=3)
        record = degraded_record(task, "DeadlineExceeded")
        assert record.mode == mode
        assert record.repeats == 0
        assert record.error == "DeadlineExceeded"

    def test_ublock_mode(self):
        task = CrawlTask(vp="DE", domain="c.com", mode="ublock")
        record = degraded_record(task, "BreakerOpenError")
        assert record.error == "BreakerOpenError"

    def test_deterministic_bytes(self):
        from repro.measure.storage import encode_record_line

        task = CrawlTask(vp="DE", domain="a.com", mode="detect")
        assert encode_record_line(
            degraded_record(task, "TimeoutError")
        ) == encode_record_line(degraded_record(task, "TimeoutError"))


# ---------------------------------------------------------------------------
# Failure taxonomy aggregation
# ---------------------------------------------------------------------------

class TestStreamingFailureTaxonomy:
    def _records(self):
        return [
            degraded_record(
                CrawlTask(vp="DE", domain="a.com"), "TimeoutError"
            ),
            degraded_record(
                CrawlTask(vp="DE", domain="b.com"), "TimeoutError"
            ),
            degraded_record(
                CrawlTask(vp="USE", domain="c.com"), "BreakerOpenError"
            ),
            degraded_record(
                CrawlTask(vp="DE", domain="d.com", mode="ublock"),
                "DNSFlapError",
            ),
        ]

    def test_counts_and_categories(self):
        from repro.measure.records import VisitRecord

        tax = StreamingFailureTaxonomy().consume(self._records())
        tax.add(VisitRecord(vp="DE", domain="ok.com", reachable=True))
        assert tax.total == 5
        assert tax.degraded == 4
        top = tax.rows()[0]
        assert (top["vp"], top["error"], top["count"]) == (
            "DE", "TimeoutError", 2
        )
        assert tax.by_category() == {"transient": 3, "permanent": 1}
        # uBlock records carry no vantage point.
        assert {"-"} == {
            row["vp"] for row in tax.rows() if row["error"] == "DNSFlapError"
        }

    def test_wave_suffix_and_render(self):
        tax = StreamingFailureTaxonomy()
        tax.add(
            degraded_record(
                CrawlTask(vp="DE", domain="a.com"), "TimeoutError"
            ),
            wave=3,
        )
        assert tax.rows()[0]["vp"] == "DE/wave-03"
        table = tax.render()
        assert "1/1 records degraded" in table
        assert "transient" in table

    def test_empty_render(self):
        assert "(no degraded records)" in StreamingFailureTaxonomy().render()


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------

#: Six vantage points over one domain: enough same-shard tasks to walk
#: a breaker through open → quarantine → half-open.
VPS = ["AU", "BR", "DE", "IN", "SE", "USE"]


@pytest.fixture(scope="module")
def resilience_crawler(small_world):
    return Crawler(small_world)


class TestEngineResilience:
    def test_virtual_latency_never_sleeps(self, small_world):
        """Satellite contract: the default latency mode pays simulated
        seconds on the virtual clock, so a 2s-per-request crawl still
        finishes in wall-clock milliseconds."""
        crawler = Crawler(small_world)
        crawler.world.network.latency = 2.0
        assert crawler.world.network.latency_mode == "virtual"
        before = crawler.world.network.clock.now()
        plan = crawler.plan_detection_crawl(
            ["DE"], small_world.crawl_targets[:4]
        )
        started = time.perf_counter()
        try:
            result = CrawlEngine(crawler).execute(plan)
        finally:
            crawler.world.network.latency = 0.0
        assert len(result) == 4
        assert time.perf_counter() - started < 30.0
        # Every request paid its 2 virtual seconds.
        advanced = crawler.world.network.clock.now() - before
        assert advanced >= 2.0 * 4

    def test_no_task_silently_lost_under_faults(self, resilience_crawler):
        """Satellite contract: exhausted retries emit degraded records
        into the merge — record count always equals plan size."""
        world = resilience_crawler.world
        targets = world.crawl_targets[:6]
        plan = resilience_crawler.plan_detection_crawl(["DE"], targets)
        plan.context["chaos"] = ChaosSpec(
            seed=5, timeout_rate=1.0, permanent_rate=1.0
        ).to_context()
        log = EventLog()
        result = CrawlEngine(
            resilience_crawler,
            retry=RetryPolicy(max_attempts=2),
            event_log=log,
        ).execute(plan)
        assert result.record_count == len(plan)
        assert len(result.failures) == len(plan)
        for record in result.records:
            assert record.flags.get("degraded") is True
            assert record.error == "TimeoutError"
        degraded_events = log.by_kind("task-degraded")
        assert len(degraded_events) == len(plan)
        assert all(
            e.detail["error"] == "TimeoutError" for e in degraded_events
        )

    def test_breaker_quarantines_a_failing_domain(self, resilience_crawler):
        """threshold=2/quarantine=2 over six same-domain tasks: two real
        failures open the breaker, two skips, a failing half-open probe
        re-opens, one more skip."""
        world = resilience_crawler.world
        domain = world.crawl_targets[0]
        plan = resilience_crawler.plan_detection_crawl(VPS, [domain])
        plan.context["chaos"] = ChaosSpec(
            seed=11, timeout_rate=1.0, permanent_rate=1.0
        ).to_context()
        log = EventLog()
        engine = CrawlEngine(
            resilience_crawler,
            retry=RetryPolicy(
                max_attempts=2, breaker_threshold=2, breaker_quarantine=2
            ),
            event_log=log,
        )
        result = engine.execute(plan)
        errors = [outcome.error for outcome in result.outcomes]
        assert errors == [
            "TimeoutError", "TimeoutError",          # streak opens it
            "BreakerOpenError", "BreakerOpenError",  # quarantine skips
            "TimeoutError",                          # half-open probe fails
            "BreakerOpenError",                      # re-opened: skip again
        ]
        skipped = [o for o in result.outcomes if o.error == "BreakerOpenError"]
        assert all(o.attempts == 0 for o in skipped)
        assert all(o.record is not None for o in result.outcomes)
        assert len(log.by_kind("breaker-open")) == 2
        assert engine._breakers[domain].state == OPEN

    def test_breaker_close_event_on_recovery(self, small_world):
        """A half-open probe that succeeds closes the breaker and emits
        breaker-close; later tasks for the domain run normally."""
        domain = small_world.crawl_targets[0]

        class FlakyDomainCrawler(Crawler):
            def __init__(self, world, fail_first):
                super().__init__(world)
                self._remaining = fail_first

            def run_task(self, task, context=None, *, visit_ids=None):
                if task.domain == domain and self._remaining > 0:
                    self._remaining -= 1
                    raise TimeoutError("injected flake")
                return super().run_task(
                    task, context, visit_ids=visit_ids
                )

        crawler = FlakyDomainCrawler(small_world, fail_first=2)
        plan = crawler.plan_detection_crawl(VPS, [domain])
        log = EventLog()
        result = CrawlEngine(
            crawler,
            retry=RetryPolicy(
                max_attempts=1, breaker_threshold=2, breaker_quarantine=1
            ),
            event_log=log,
        ).execute(plan)
        errors = [outcome.error for outcome in result.outcomes]
        assert errors == [
            "TimeoutError", "TimeoutError",  # the flakes open the breaker
            "BreakerOpenError",              # one quarantine skip
            None, None, None,                # probe succeeds; closed again
        ]
        assert len(log.by_kind("breaker-open")) == 1
        assert len(log.by_kind("breaker-close")) == 1
        (close_event,) = log.by_kind("breaker-close")
        assert close_event.detail["domain"] == domain

    def test_task_deadline_degrades_deterministically(
        self, resilience_crawler
    ):
        """A task whose retries would bust its virtual budget degrades
        to DeadlineExceeded instead of burning the whole attempt
        schedule."""
        world = resilience_crawler.world
        targets = world.crawl_targets[:3]
        plan = resilience_crawler.plan_detection_crawl(["DE"], targets)
        plan.context["chaos"] = ChaosSpec(
            seed=21, timeout_rate=1.0, permanent_rate=1.0
        ).to_context()
        result = CrawlEngine(
            resilience_crawler,
            retry=RetryPolicy(
                max_attempts=10,
                backoff_base=0.6,
                backoff_factor=2.0,
                jitter=0.0,
                task_deadline=1.0,
            ),
        ).execute(plan)
        assert [o.error for o in result.failures] == [
            "DeadlineExceeded"
        ] * len(targets)
        # attempt 1 fails, 0.6s backoff fits the 1.0s budget; attempt
        # 2 fails and the next 1.2s backoff would bust it.
        assert all(o.attempts == 2 for o in result.failures)

    def test_attempt_deadline_recovers_from_slow_loris(
        self, resilience_crawler
    ):
        """A slow-loris latency spike larger than the attempt deadline
        times the attempt out; the spike is consumed, so the retry
        succeeds and no task degrades."""
        from repro.urlkit import registrable_domain

        world = resilience_crawler.world
        targets = world.crawl_targets[:4]
        plan = resilience_crawler.plan_detection_crawl(["DE"], targets)
        # Restrict spikes to the first-party sites: one spike per task,
        # consumed by the first (timed-out) attempt.
        plan.context["chaos"] = ChaosSpec(
            seed=31, slow_rate=1.0, slow_latency=60.0,
            domains=tuple(
                registrable_domain(target) or target for target in targets
            ),
        ).to_context()
        before = world.network.clock.now()
        result = CrawlEngine(
            resilience_crawler,
            retry=RetryPolicy(max_attempts=3, attempt_deadline=10.0),
        ).execute(plan)
        assert not result.failures
        assert result.record_count == len(plan)
        # The spikes really happened — on the virtual clock.
        assert world.network.clock.now() - before >= 60.0

    def test_chaos_plan_flips_visit_id_regime(self, resilience_crawler):
        plan = resilience_crawler.plan_detection_crawl(
            ["DE"], resilience_crawler.world.crawl_targets[:2]
        )
        assert not chaos_plan(plan)
        engine = CrawlEngine(resilience_crawler)
        serial_fp = engine.fingerprint(plan)
        plan.context["chaos"] = ChaosSpec(seed=1).to_context()
        assert chaos_plan(plan)
        # The fingerprint covers both the chaos context and the regime.
        assert engine.fingerprint(plan) != serial_fp
