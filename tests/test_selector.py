"""Tests for the CSS selector engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dom import query_selector_all, matches_selector
from repro.dom.selector import query_selector
from repro.errors import SelectorError
from repro.soup import parse_document

HTML = """
<html><body>
  <div id="banner" class="cookie consent" data-cmp="sp">
    <p class="msg">We use cookies</p>
    <button id="accept" class="btn primary">Accept all</button>
    <button id="reject" class="btn">Reject</button>
  </div>
  <div class="content">
    <p>article text</p>
    <a href="https://example.de/more">more</a>
  </div>
</body></html>
"""


@pytest.fixture(scope="module")
def doc():
    return parse_document(HTML)


class TestBasicSelectors:
    def test_by_tag(self, doc):
        assert len(query_selector_all(doc, "button")) == 2

    def test_universal(self, doc):
        assert len(query_selector_all(doc, "*")) >= 8

    def test_by_id(self, doc):
        els = query_selector_all(doc, "#accept")
        assert len(els) == 1
        assert els[0].text_content() == "Accept all"

    def test_by_class(self, doc):
        assert len(query_selector_all(doc, ".btn")) == 2

    def test_compound_classes(self, doc):
        assert len(query_selector_all(doc, ".btn.primary")) == 1

    def test_tag_and_class(self, doc):
        assert len(query_selector_all(doc, "div.cookie")) == 1

    def test_no_match(self, doc):
        assert query_selector_all(doc, ".missing") == []
        assert query_selector(doc, ".missing") is None


class TestAttributeSelectors:
    def test_exists(self, doc):
        assert len(query_selector_all(doc, "[data-cmp]")) == 1

    def test_equals(self, doc):
        assert len(query_selector_all(doc, '[data-cmp="sp"]')) == 1
        assert query_selector_all(doc, '[data-cmp="other"]') == []

    def test_contains(self, doc):
        assert len(query_selector_all(doc, '[href*="example.de"]')) == 1

    def test_starts_ends(self, doc):
        assert len(query_selector_all(doc, '[href^="https://"]')) == 1
        assert len(query_selector_all(doc, '[href$="/more"]')) == 1

    def test_word_match(self, doc):
        assert len(query_selector_all(doc, '[class~="consent"]')) == 1


class TestCombinators:
    def test_descendant(self, doc):
        assert len(query_selector_all(doc, "div button")) == 2

    def test_child(self, doc):
        assert len(query_selector_all(doc, "#banner > button")) == 2
        assert query_selector_all(doc, "body > button") == []

    def test_deep_descendant(self, doc):
        assert len(query_selector_all(doc, "body .content p")) == 1

    def test_group(self, doc):
        els = query_selector_all(doc, "#accept, #reject")
        assert {e.id for e in els} == {"accept", "reject"}

    def test_not(self, doc):
        els = query_selector_all(doc, "button:not(.primary)")
        assert [e.id for e in els] == ["reject"]


class TestMatches:
    def test_matches_selector(self, doc):
        button = query_selector(doc, "#accept")
        assert matches_selector(button, "button.btn")
        assert not matches_selector(button, "div")

    def test_matches_with_ancestry(self, doc):
        button = query_selector(doc, "#accept")
        assert matches_selector(button, "#banner > button")
        assert not matches_selector(button, ".content button")


class TestShadowBoundary:
    def test_selector_does_not_pierce_shadow(self):
        doc = parse_document(
            '<div id="host"><template shadowrootmode="open">'
            "<button>hidden</button></template></div>"
        )
        assert query_selector_all(doc, "button") == []

    def test_selector_does_not_pierce_iframe(self):
        doc = parse_document(
            '<iframe srcdoc="&lt;button&gt;inner&lt;/button&gt;"></iframe>'
        )
        assert query_selector_all(doc, "button") == []


class TestErrors:
    @pytest.mark.parametrize(
        "bad", ["", "  ", ">div", "div >", "[unclosed", "div:(hover)", "::"]
    )
    def test_bad_selector_raises(self, bad, doc):
        with pytest.raises(SelectorError):
            query_selector_all(doc, bad)

    def test_unknown_pseudo_raises(self, doc):
        with pytest.raises(SelectorError):
            query_selector_all(doc, "div:hover")


class TestSelectorProperties:
    @given(
        tag=st.sampled_from(["div", "p", "span", "button"]),
        cls=st.sampled_from(["a", "b", "c"]),
    )
    def test_query_results_all_match(self, tag, cls):
        doc = parse_document(
            f'<{tag} class="{cls}"><p class="a">x</p></{tag}><div class="b"></div>'
        )
        selector = f"{tag}.{cls}"
        for el in query_selector_all(doc, selector):
            assert matches_selector(el, selector)

    @given(n=st.integers(min_value=0, max_value=12))
    def test_count_matches_generated(self, n):
        html = "".join(f'<span class="t" id="s{i}"></span>' for i in range(n))
        doc = parse_document(f"<div>{html}</div>")
        assert len(query_selector_all(doc, "span.t")) == n
