"""Tests for the SMP platform model and login/subscription flows."""

import pytest

from repro.errors import AuthenticationError
from repro.smp import SMPAccount, SMPPlatform


class TestAccounts:
    def make_platform(self):
        return SMPPlatform("contentpass", "contentpass.net")

    def test_create_and_verify(self):
        platform = self.make_platform()
        platform.create_account("a@b.c", "pw")
        account = platform.verify("a@b.c", "pw")
        assert not account.subscribed

    def test_duplicate_account_rejected(self):
        platform = self.make_platform()
        platform.create_account("a@b.c", "pw")
        with pytest.raises(AuthenticationError):
            platform.create_account("a@b.c", "other")

    def test_wrong_password_rejected(self):
        platform = self.make_platform()
        platform.create_account("a@b.c", "pw")
        with pytest.raises(AuthenticationError):
            platform.verify("a@b.c", "wrong")

    def test_purchase(self):
        platform = self.make_platform()
        platform.create_account("a@b.c", "pw")
        platform.purchase_subscription("a@b.c")
        assert platform.verify("a@b.c", "pw").subscribed

    def test_purchase_without_account(self):
        with pytest.raises(AuthenticationError):
            self.make_platform().purchase_subscription("nobody@x.y")

    def test_token_lookup(self):
        platform = self.make_platform()
        account = platform.create_account("a@b.c", "pw")
        assert platform.account_for_token(account.token) is account
        assert platform.account_for_token("bogus") is None

    def test_tokens_differ(self):
        assert (
            SMPAccount("a@b.c", "pw").token != SMPAccount("d@e.f", "pw").token
        )

    def test_cookie_names(self):
        platform = self.make_platform()
        assert platform.session_cookie == "contentpass_session"
        assert platform.subscriber_cookie == "contentpass_subscriber"


class TestLoginFlow:
    def test_login_sets_session_cookie(self, medium_world):
        platform = medium_world.platforms["contentpass"]
        if "login@t.st" not in platform.accounts:
            platform.create_account("login@t.st", "pw")
        browser = medium_world.browser("DE")
        page = browser.visit(
            f"https://{platform.domain}/login?email=login@t.st&password=pw"
        )
        assert page.status == 200
        assert browser.jar.has(platform.session_cookie, platform.domain)

    def test_failed_login_no_cookie(self, medium_world):
        platform = medium_world.platforms["contentpass"]
        browser = medium_world.browser("DE")
        page = browser.visit(
            f"https://{platform.domain}/login?email=x@y.z&password=bad"
        )
        assert page.status == 401
        assert not browser.jar.has(platform.session_cookie, platform.domain)

    def test_subscribed_visitor_sees_no_wall(self, medium_world):
        from repro.bannerclick import BannerClick

        platform = medium_world.platforms["contentpass"]
        if "nowall@t.st" not in platform.accounts:
            platform.create_account("nowall@t.st", "pw")
        platform.purchase_subscription("nowall@t.st")
        partner = platform.partner_domains[0]
        browser = medium_world.browser("DE")
        browser.visit(
            f"https://{platform.domain}/login?email=nowall@t.st&password=pw"
        )
        page = browser.visit(partner)
        assert page.flags.get("smp_subscriber")
        assert not BannerClick().detect(page).is_cookiewall

    def test_unsubscribed_visitor_sees_wall(self, medium_world):
        from repro.bannerclick import BannerClick

        platform = medium_world.platforms["contentpass"]
        if "free@t.st" not in platform.accounts:
            platform.create_account("free@t.st", "pw")  # no purchase
        partner = platform.partner_domains[0]
        browser = medium_world.browser("DE")
        browser.visit(
            f"https://{platform.domain}/login?email=free@t.st&password=pw"
        )
        page = browser.visit(partner)
        assert BannerClick().detect(page).is_cookiewall

    def test_checkout_page_served(self, medium_world):
        platform = medium_world.platforms["contentpass"]
        browser = medium_world.browser("DE")
        page = browser.visit(f"https://{platform.domain}/checkout")
        assert "2,99" in page.visible_text()


class TestMetricsCookieDeterminism:
    """Regression: the loader's metrics cookie must not depend on the
    interpreter hash seed (it used to be derived from the per-process
    salted ``hash(spec.domain)``; reprolint's salted-hash rule now
    bans the pattern outright)."""

    @staticmethod
    def _walled_partner(world, platform):
        for domain in platform.partner_domains:
            spec = world.sites.get(domain)
            if spec is not None and spec.wall is not None:
                return domain
        pytest.skip("no walled partner in the fixture world")

    def test_metrics_cookie_is_crc32_of_domain(self, medium_world):
        import zlib

        platform = medium_world.platforms["contentpass"]
        partner = self._walled_partner(medium_world, platform)
        browser = medium_world.browser("DE")
        browser.visit(partner)
        cookie = browser.jar.get(f"{platform.name}_metrics", platform.domain)
        assert cookie is not None
        expected = zlib.crc32(partner.encode("utf-8")) & 0xFFFF
        assert cookie.value == f"m{expected}"

    def test_metrics_cookie_stable_across_hash_seeds(self):
        """The value a fresh interpreter computes is pinned across
        PYTHONHASHSEED values — the exact property ``hash()`` broke."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        script = (
            "from repro.webgen import build_world\n"
            "world = build_world(scale=0.02, seed=7)\n"
            "platform = world.platforms['contentpass']\n"
            "partner = next(\n"
            "    d for d in platform.partner_domains\n"
            "    if world.sites.get(d) is not None\n"
            "    and world.sites[d].wall is not None\n"
            ")\n"
            "browser = world.browser('DE')\n"
            "browser.visit(partner)\n"
            "cookie = browser.jar.get(\n"
            "    f'{platform.name}_metrics', platform.domain\n"
            ")\n"
            "print(f'{partner} {cookie.value}')\n"
        )
        repo = Path(__file__).resolve().parent.parent
        values = []
        for seed in ("0", "1"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = str(repo / "src")
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            values.append(proc.stdout.strip())
        assert values[0] == values[1]
