"""Population invariants, including the full-scale paper marginals."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.webgen import build_world
from repro.webgen.config import apportion


@pytest.fixture(scope="module")
def full_world():
    """The paper-scale world (built once; ~10s)."""
    return build_world(scale=1.0, seed=2023)


class TestFullScaleMarginals:
    """The calibrated population must match the paper's Table 1 / §3."""

    def test_reachable_union_is_45222(self, full_world):
        assert len(full_world.crawl_targets) == 45222

    def test_280_walls(self, full_world):
        assert len(full_world.wall_domains) == 280

    def test_per_vp_visibility_matches_table1(self, full_world):
        expected = {
            "USE": 197, "USW": 199, "BR": 196, "DE": 280,
            "SE": 276, "ZA": 199, "IN": 192, "AU": 190,
        }
        for vp, count in expected.items():
            visible = sum(
                1 for d in full_world.wall_domains
                if vp in full_world.sites[d].wall.regions
            )
            assert visible == count, vp

    def test_tld_marginals(self, full_world):
        tlds = Counter(
            full_world.sites[d].tld for d in full_world.wall_domains
        )
        assert tlds["de"] == 233
        assert tlds["com"] == 14
        assert tlds["net"] == 14
        assert tlds["it"] == 6
        assert tlds["at"] == 4
        assert tlds["org"] == 4
        assert tlds["fr"] == 2

    def test_placement_marginals(self, full_world):
        placements = Counter(
            full_world.sites[d].wall.placement for d in full_world.wall_domains
        )
        assert placements["main"] == 72
        assert placements["iframe"] == 132
        assert placements["shadow-open"] + placements["shadow-closed"] == 76

    def test_toplist_marginals(self, full_world):
        per_list = Counter()
        for d in full_world.wall_domains:
            for country in full_world.sites[d].listings:
                per_list[country] += 1
        assert per_list["DE"] == 259
        assert per_list["SE"] == 15
        assert per_list["AU"] == 5
        assert per_list["BR"] == 1

    def test_germany_top1k_wall_count(self, full_world):
        top1k = set(full_world.toplists["DE"].domains("top1k"))
        walls_in_top = sum(
            1 for d in full_world.wall_domains if d in top1k
        )
        assert walls_in_top == 85  # 8.5% of the German top 1k

    def test_smp_partner_counts(self, full_world):
        cp = full_world.platforms["contentpass"]
        fc = full_world.platforms["freechoice"]
        assert len(cp.partner_domains) == 219
        assert len(fc.partner_domains) == 167
        on_list_cp = sum(
            1 for d in cp.partner_domains if full_world.sites[d].listings
        )
        on_list_fc = sum(
            1 for d in fc.partner_domains if full_world.sites[d].listings
        )
        assert on_list_cp == 76
        assert on_list_fc == 62

    def test_five_bait_sites(self, full_world):
        assert len(full_world.bait_domains) == 5

    def test_blocked_serving_share(self, full_world):
        """196/280 walls (70%) must be Annoyances-blockable."""
        blocked = sum(
            1 for d in full_world.wall_domains
            if full_world.sites[d].wall.blocked_by_annoyances
        )
        assert blocked == 196

    def test_price_mode_is_299(self, full_world):
        prices = Counter(
            full_world.sites[d].wall.monthly_price_cents
            for d in full_world.wall_domains
        )
        assert prices.most_common(1)[0][0] == 299

    def test_exactly_two_broken_ublock_sites(self, full_world):
        anti = [
            d for d in full_world.wall_domains
            if full_world.sites[d].wall.anti_adblock
        ]
        lock = [
            d for d in full_world.wall_domains
            if full_world.sites[d].wall.fp_scroll_lock
        ]
        assert len(anti) == 1 and len(lock) == 1
        assert anti != lock


class TestScaleFamily:
    """Worlds must stay consistent across scales."""

    @pytest.mark.parametrize("scale", [0.01, 0.03, 0.08])
    def test_structure_holds_at_any_scale(self, scale):
        world = build_world(scale=scale, seed=5)
        cfg = world.config
        for toplist in world.toplists.values():
            assert len(toplist) == cfg.n_list_size
        assert len(world.wall_domains) == cfg.n_walls
        assert len(world.bait_domains) == cfg.n_bait
        for domain in world.crawl_targets:
            assert world.sites[domain].reachable
        # Every wall shows for Germany and its price extracts.
        for domain in world.wall_domains:
            assert "DE" in world.sites[domain].wall.regions

    @pytest.mark.parametrize("scale", [0.01, 0.05])
    def test_union_count_proportional(self, scale):
        world = build_world(scale=scale, seed=5)
        expected = 45222 * scale
        assert abs(len(world.crawl_targets) - expected) / expected < 0.12


class TestApportionProperties:
    @given(
        weights=st.lists(
            st.integers(min_value=1, max_value=500), min_size=1, max_size=30
        ),
        total=st.integers(min_value=0, max_value=2000),
    )
    @settings(max_examples=80, deadline=None)
    def test_sums_and_bounds(self, weights, total):
        result = apportion(weights, total)
        assert sum(result) == total
        assert all(v >= 0 for v in result)
        # No share exceeds its proportional entitlement by more than 1.
        weight_sum = sum(weights)
        for weight, value in zip(weights, result):
            assert value <= weight / weight_sum * total + 1

    @given(
        n=st.integers(min_value=1, max_value=12),
        total=st.integers(min_value=0, max_value=240),
    )
    @settings(max_examples=40, deadline=None)
    def test_equal_weights_near_equal_shares(self, n, total):
        result = apportion([1] * n, total)
        assert max(result) - min(result) <= 1
