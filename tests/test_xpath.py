"""Tests for the XPath subset engine."""

import pytest

from repro.dom.xpath import parse_xpath, xpath_all, xpath_first
from repro.errors import SelectorError
from repro.soup import parse_document

HTML = """
<html><body>
  <div class="cookie-banner" id="cmp">
    <p>We value your privacy</p>
    <button id="a1" class="accept-btn">Alle akzeptieren</button>
    <button id="r1">Ablehnen</button>
    <div><button id="nested">Einstellungen</button></div>
  </div>
  <footer><a href="/impressum">Impressum</a></footer>
</body></html>
"""


@pytest.fixture(scope="module")
def doc():
    return parse_document(HTML)


class TestAxes:
    def test_descendant_any_depth(self, doc):
        assert len(xpath_all(doc, "//button")) == 3

    def test_wildcard(self, doc):
        assert len(xpath_all(doc, "//div")) == 2

    def test_absolute_child_path(self, doc):
        els = xpath_all(doc, "/html/body/footer/a")
        assert len(els) == 1
        assert els[0].get_attribute("href") == "/impressum"

    def test_mixed_path(self, doc):
        # //div matches both divs; each contributes its direct button children.
        assert len(xpath_all(doc, "//div/button")) == 3
        assert len(xpath_all(doc, "//div[@id='cmp']/button")) == 2

    def test_descendant_within_step(self, doc):
        assert len(xpath_all(doc, "//div//button")) == 3


class TestPredicates:
    def test_attr_equality(self, doc):
        els = xpath_all(doc, "//button[@id='a1']")
        assert len(els) == 1

    def test_attr_contains(self, doc):
        els = xpath_all(doc, "//div[contains(@class, 'cookie')]")
        assert len(els) == 1
        assert els[0].id == "cmp"

    def test_text_contains(self, doc):
        els = xpath_all(doc, "//button[contains(text(), 'akzeptieren')]")
        assert [e.id for e in els] == ["a1"]

    def test_text_equality(self, doc):
        els = xpath_all(doc, "//button[text()='Ablehnen']")
        assert [e.id for e in els] == ["r1"]

    def test_conjunction(self, doc):
        els = xpath_all(
            doc, "//button[@id='a1'][contains(text(), 'akzeptieren')]"
        )
        assert len(els) == 1
        assert xpath_all(doc, "//button[@id='r1'][contains(text(), 'akzeptieren')]") == []

    def test_no_match(self, doc):
        assert xpath_all(doc, "//section") == []
        assert xpath_first(doc, "//section") is None


class TestBoundaries:
    def test_xpath_does_not_pierce_shadow(self):
        doc = parse_document(
            '<div><template shadowrootmode="open"><button>x</button></template></div>'
        )
        assert xpath_all(doc, "//button") == []

    def test_xpath_does_not_pierce_iframe(self):
        doc = parse_document(
            '<iframe srcdoc="&lt;button&gt;x&lt;/button&gt;"></iframe>'
        )
        assert xpath_all(doc, "//button") == []


class TestParsing:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "button",           # relative paths unsupported
            "//",
            "//button[@]",
            "//button[contains(text)]",
            "//button[1]",      # positional predicates unsupported
        ],
    )
    def test_rejects_bad_xpath(self, bad):
        with pytest.raises(SelectorError):
            parse_xpath(bad)

    def test_parse_structure(self):
        steps = parse_xpath("//div[contains(@class,'x')]/button")
        assert len(steps) == 2
        assert steps[0].axis == "descendant"
        assert steps[1].axis == "child"
        assert steps[1].tag == "button"
