"""Smoke tests: the example scripts must run end to end."""

import runpy
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "is cookiewall:   True" in out
    assert "5-visit average" in out
    assert "detection crawl:" in out
    assert "reproduced the measurement exactly" in out


def test_revoking_acceptance_runs(capsys):
    run_example("revoking_acceptance.py")
    out = capsys.readouterr().out
    assert "tracking cookies" in out
    assert "subscriber recognised: True" in out


def test_country_landscape_runs_small(capsys):
    run_example("country_landscape.py", ["0.02"])
    out = capsys.readouterr().out
    assert "Frankfurt" in out
    assert "Cookiewall landscape" in out
