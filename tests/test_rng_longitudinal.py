"""Tests for RNG streams and longitudinal round comparison."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measure.crawl import CrawlResult
from repro.measure.instrumentation import EventLog
from repro.measure.longitudinal import (
    compare_rounds,
    run_longitudinal,
    smp_growth,
)
from repro.measure.records import VisitRecord
from repro.rng import SeedSequence, derive_seed, stable_shuffle, weighted_choice


class TestSeedSequence:
    def test_same_scope_same_stream(self):
        root = SeedSequence(42)
        a = root.stream("x", 1)
        b = root.stream("x", 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_scope_different_stream(self):
        root = SeedSequence(42)
        assert root.stream("x").random() != root.stream("y").random()

    def test_child_equals_direct_derivation(self):
        root = SeedSequence(7)
        assert root.child("a").child("b") == SeedSequence(
            derive_seed(derive_seed(7, "a"), "b")
        )

    def test_derive_seed_stable_known_value(self):
        # Pins cross-version determinism: if this changes, every world
        # built from a given seed changes.
        assert derive_seed(2023, "walls") == derive_seed(2023, "walls")
        assert derive_seed(2023, "walls") != derive_seed(2023, "bait")

    def test_bytes_and_int_scopes(self):
        assert derive_seed(1, b"x") != derive_seed(1, "x")
        assert derive_seed(1, 2, 3) != derive_seed(1, 23)

    def test_repr_and_hash(self):
        s = SeedSequence(5)
        assert "5" in repr(s)
        assert hash(s) == hash(SeedSequence(5))

    @given(seed=st.integers(min_value=0, max_value=2**63))
    @settings(max_examples=30, deadline=None)
    def test_property_streams_reproducible(self, seed):
        a = SeedSequence(seed).stream("t")
        b = SeedSequence(seed).stream("t")
        assert a.random() == b.random()


class TestRngHelpers:
    def test_stable_shuffle_leaves_input(self):
        import random

        items = [1, 2, 3, 4]
        out = stable_shuffle(items, random.Random(1))
        assert items == [1, 2, 3, 4]
        assert sorted(out) == items

    def test_weighted_choice_respects_zero_weight(self):
        import random

        rng = random.Random(3)
        picks = {weighted_choice(rng, {"a": 1.0, "b": 0.0}) for _ in range(50)}
        assert picks == {"a"}

    def test_weighted_choice_empty_raises(self):
        import random

        with pytest.raises(ValueError):
            weighted_choice(random.Random(1), {})
        with pytest.raises(ValueError):
            weighted_choice(random.Random(1), {"a": 0.0})

    @given(
        weights=st.dictionaries(
            st.sampled_from("abcdef"),
            st.floats(min_value=0.1, max_value=10),
            min_size=1,
        ),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_weighted_choice_in_keys(self, weights, seed):
        import random

        assert weighted_choice(random.Random(seed), weights) in weights


def crawl_with_walls(domains):
    result = CrawlResult()
    for domain in domains:
        result.records.append(
            VisitRecord(vp="DE", domain=domain, is_cookiewall=True)
        )
    return result


class TestLongitudinal:
    def test_compare_rounds(self):
        round1 = crawl_with_walls(["a.de", "b.de", "c.de"])
        round2 = crawl_with_walls(["b.de", "c.de", "d.de", "e.de"])
        comparison = compare_rounds(round1, round2)
        assert comparison.walls_round1 == 3
        assert comparison.walls_round2 == 4
        assert comparison.appeared == ["d.de", "e.de"]
        assert comparison.disappeared == ["a.de"]
        assert comparison.stable == ["b.de", "c.de"]
        assert comparison.growth == pytest.approx(1 / 3)

    def test_growth_from_zero(self):
        comparison = compare_rounds(crawl_with_walls([]), crawl_with_walls(["a.de"]))
        assert comparison.growth == 0.0

    def test_render(self):
        text = compare_rounds(
            crawl_with_walls(["a.de"]), crawl_with_walls(["a.de", "b.de"])
        ).render()
        assert "round 2 walls: 2" in text

    def test_smp_growth_report(self):
        world = type("W", (), {})()
        platform_a = type("P", (), {"partner_domains": ["a", "b"]})()
        platform_b = type("P", (), {"partner_domains": ["a", "b", "c"]})()
        world.platforms = {"contentpass": platform_a}
        later = type("W", (), {})()
        later.platforms = {"contentpass": platform_b}
        growth = smp_growth(world, later)
        assert growth.rosters["contentpass"] == (2, 3)
        assert "+50.0%" in growth.render()


class TestRunLongitudinal:
    """The longitudinal workload, routed through the crawl engine."""

    def test_waves_execute_through_engine_plans(self, medium_world):
        targets = medium_world.crawl_targets[:80]
        log = EventLog()
        campaign = run_longitudinal(
            medium_world, months=(0, 4), domains=targets,
            workers=2, shards=4, event_log=log,
        )
        assert [w.months for w in campaign.waves] == [0, 4]
        assert all(len(w.crawl) == len(targets) for w in campaign.waves)
        # The engine executed one sharded plan per wave — the proof the
        # workload went through CrawlPlans, not an ad-hoc loop.
        plans = log.by_kind("plan")
        assert len(plans) == 2
        assert all(
            p.detail == {
                "tasks": 80, "shards": 4, "workers": 2,
                "backend": "thread", "merge": "memory",
            }
            for p in plans
        )
        assert log.by_kind("shard")
        assert log.by_kind("throughput")

    def test_baseline_wave_matches_plain_crawl(self, medium_world):
        from repro.measure.crawl import Crawler

        targets = medium_world.crawl_targets[:60]
        campaign = run_longitudinal(
            medium_world, months=(0,), domains=targets, workers=4
        )
        plain = Crawler(medium_world).crawl_all(["DE"], targets)
        assert [r.to_dict() for r in campaign.waves[0].crawl.records] == [
            r.to_dict() for r in plain.records
        ]
        assert campaign.waves[0].summary is None

    def test_drift_summary_and_comparisons(self, medium_world):
        campaign = run_longitudinal(
            medium_world, months=(0, 4),
            domains=medium_world.crawl_targets[:400], workers=4,
        )
        later = campaign.waves[1]
        assert later.summary is not None and later.summary.months == 4
        (comparison,) = campaign.comparisons()
        walls0 = set(campaign.waves[0].crawl.cookiewall_domains("DE"))
        walls4 = set(later.crawl.cookiewall_domains("DE"))
        assert comparison.walls_round1 == len(walls0)
        assert comparison.walls_round2 == len(walls4)
        assert set(comparison.appeared) == walls4 - walls0
        growth = campaign.roster_growth()
        assert set(growth.rosters) == set(medium_world.platforms)
        rendered = campaign.render()
        assert "month 0 -> month 4" in rendered
        assert "SMP roster growth" in rendered

    def test_out_dir_spools_and_resumes(self, tmp_path, medium_world):
        targets = medium_world.crawl_targets[:40]
        first = run_longitudinal(
            medium_world, months=(0, 2), domains=targets,
            workers=2, out_dir=tmp_path,
        )
        assert (tmp_path / "wave-00.jsonl").exists()
        assert (tmp_path / "wave-02.jsonl").exists()
        assert not (tmp_path / "wave-00.jsonl.checkpoint").exists()
        # Resuming a finished campaign reloads every complete wave from
        # its spool instead of re-crawling it.
        again = run_longitudinal(
            medium_world, months=(0, 2), domains=targets,
            workers=2, out_dir=tmp_path, resume=True,
        )
        assert [w.resumed for w in again.waves] == [40, 40]
        for wave, rerun in zip(first.waves, again.waves):
            assert [r.to_dict() for r in rerun.crawl.records] == [
                r.to_dict() for r in wave.crawl.records
            ]

    def test_resume_requires_out_dir(self, medium_world):
        with pytest.raises(ValueError, match="requires out_dir"):
            run_longitudinal(medium_world, months=(0,), resume=True)

    def test_invalid_months_rejected(self, medium_world):
        with pytest.raises(ValueError):
            run_longitudinal(medium_world, months=())
        with pytest.raises(ValueError):
            run_longitudinal(medium_world, months=(4, 0))
        with pytest.raises(ValueError):
            run_longitudinal(medium_world, months=(0, 0))
        with pytest.raises(ValueError):
            run_longitudinal(medium_world, months=(-1, 2))
