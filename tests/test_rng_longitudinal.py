"""Tests for RNG streams and longitudinal round comparison."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measure.crawl import CrawlResult
from repro.measure.longitudinal import compare_rounds, smp_growth
from repro.measure.records import VisitRecord
from repro.rng import SeedSequence, derive_seed, stable_shuffle, weighted_choice


class TestSeedSequence:
    def test_same_scope_same_stream(self):
        root = SeedSequence(42)
        a = root.stream("x", 1)
        b = root.stream("x", 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_scope_different_stream(self):
        root = SeedSequence(42)
        assert root.stream("x").random() != root.stream("y").random()

    def test_child_equals_direct_derivation(self):
        root = SeedSequence(7)
        assert root.child("a").child("b") == SeedSequence(
            derive_seed(derive_seed(7, "a"), "b")
        )

    def test_derive_seed_stable_known_value(self):
        # Pins cross-version determinism: if this changes, every world
        # built from a given seed changes.
        assert derive_seed(2023, "walls") == derive_seed(2023, "walls")
        assert derive_seed(2023, "walls") != derive_seed(2023, "bait")

    def test_bytes_and_int_scopes(self):
        assert derive_seed(1, b"x") != derive_seed(1, "x")
        assert derive_seed(1, 2, 3) != derive_seed(1, 23)

    def test_repr_and_hash(self):
        s = SeedSequence(5)
        assert "5" in repr(s)
        assert hash(s) == hash(SeedSequence(5))

    @given(seed=st.integers(min_value=0, max_value=2**63))
    @settings(max_examples=30, deadline=None)
    def test_property_streams_reproducible(self, seed):
        a = SeedSequence(seed).stream("t")
        b = SeedSequence(seed).stream("t")
        assert a.random() == b.random()


class TestRngHelpers:
    def test_stable_shuffle_leaves_input(self):
        import random

        items = [1, 2, 3, 4]
        out = stable_shuffle(items, random.Random(1))
        assert items == [1, 2, 3, 4]
        assert sorted(out) == items

    def test_weighted_choice_respects_zero_weight(self):
        import random

        rng = random.Random(3)
        picks = {weighted_choice(rng, {"a": 1.0, "b": 0.0}) for _ in range(50)}
        assert picks == {"a"}

    def test_weighted_choice_empty_raises(self):
        import random

        with pytest.raises(ValueError):
            weighted_choice(random.Random(1), {})
        with pytest.raises(ValueError):
            weighted_choice(random.Random(1), {"a": 0.0})

    @given(
        weights=st.dictionaries(
            st.sampled_from("abcdef"),
            st.floats(min_value=0.1, max_value=10),
            min_size=1,
        ),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_weighted_choice_in_keys(self, weights, seed):
        import random

        assert weighted_choice(random.Random(seed), weights) in weights


def crawl_with_walls(domains):
    result = CrawlResult()
    for domain in domains:
        result.records.append(
            VisitRecord(vp="DE", domain=domain, is_cookiewall=True)
        )
    return result


class TestLongitudinal:
    def test_compare_rounds(self):
        round1 = crawl_with_walls(["a.de", "b.de", "c.de"])
        round2 = crawl_with_walls(["b.de", "c.de", "d.de", "e.de"])
        comparison = compare_rounds(round1, round2)
        assert comparison.walls_round1 == 3
        assert comparison.walls_round2 == 4
        assert comparison.appeared == ["d.de", "e.de"]
        assert comparison.disappeared == ["a.de"]
        assert comparison.stable == ["b.de", "c.de"]
        assert comparison.growth == pytest.approx(1 / 3)

    def test_growth_from_zero(self):
        comparison = compare_rounds(crawl_with_walls([]), crawl_with_walls(["a.de"]))
        assert comparison.growth == 0.0

    def test_render(self):
        text = compare_rounds(
            crawl_with_walls(["a.de"]), crawl_with_walls(["a.de", "b.de"])
        ).render()
        assert "round 2 walls: 2" in text

    def test_smp_growth_report(self):
        world = type("W", (), {})()
        platform_a = type("P", (), {"partner_domains": ["a", "b"]})()
        platform_b = type("P", (), {"partner_domains": ["a", "b", "c"]})()
        world.platforms = {"contentpass": platform_a}
        later = type("W", (), {})()
        later.platforms = {"contentpass": platform_b}
        growth = smp_growth(world, later)
        assert growth.rosters["contentpass"] == (2, 3)
        assert "+50.0%" in growth.render()
