"""Integration tests: every experiment reproduces the paper's shape."""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment


@pytest.fixture(scope="module")
def results(medium_context):
    """Run every experiment once on the shared 5% world."""
    return {
        experiment_id: run_experiment(experiment_id, context=medium_context)
        for experiment_id in EXPERIMENTS
    }


class TestRunner:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
            "accuracy", "ublock", "landscape", "smp",
        }

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99", scale=0.01)

    def test_results_render(self, results):
        for result in results.values():
            assert result.rendered
            assert str(result) == result.rendered


class TestTable1Shape(object):
    def test_germany_sees_most_walls(self, results):
        rows = results["table1"].data["rows"]
        de = rows["DE"]["cookiewalls"]
        for vp in ("USE", "USW", "BR", "ZA", "IN", "AU"):
            assert rows[vp]["cookiewalls"] < de

    def test_eu_vps_comparable(self, results):
        rows = results["table1"].data["rows"]
        assert rows["SE"]["cookiewalls"] >= rows["USE"]["cookiewalls"]

    def test_us_columns_zero(self, results):
        rows = results["table1"].data["rows"]
        for vp in ("USE", "USW"):
            assert rows[vp]["toplist"] == 0
            assert rows[vp]["cctld"] == 0

    def test_german_columns_dominate(self, results):
        rows = results["table1"].data["rows"]
        assert rows["DE"]["toplist"] > 0
        assert rows["DE"]["cctld"] > 0
        assert rows["DE"]["language"] > 0


class TestLandscapeShape:
    def test_overall_rate_below_two_percent(self, results):
        rate = results["landscape"].data["overall_rate"]
        assert 0.001 < rate < 0.02  # paper: 0.6%

    def test_germany_rates_ordered(self, results):
        data = results["landscape"].data
        # top-1k prevalence exceeds top-10k prevalence (paper: 8.5 vs 2.9).
        assert data["germany_top1k_rate"] > data["germany_top10k_rate"]
        assert data["germany_top10k_rate"] > data["overall_rate"]

    def test_placements_all_present(self, results):
        placements = results["landscape"].data["placement_counts"]
        assert placements.get("iframe", 0) > 0
        assert placements.get("main", 0) > 0
        shadow = placements.get("shadow-open", 0) + placements.get(
            "shadow-closed", 0
        )
        assert shadow > 0


class TestAccuracyShape:
    def test_full_recall(self, results):
        assert results["accuracy"].data["full_recall"] == 1.0

    def test_precision_high_but_imperfect(self, results):
        precision = results["accuracy"].data["full_precision"]
        assert 0.8 < precision < 1.0  # bait sites create known FPs


class TestFigureShapes:
    def test_fig1_news_is_top_category(self, results):
        shares = results["fig1"].data["shares"]
        top = max(shares, key=lambda k: shares[k])
        assert top == "News and Media"

    def test_fig2_modal_bucket_is_three(self, results):
        assert results["fig2"].data["modal_bucket"] == 3

    def test_fig2_ecdf_shape(self, results):
        data = results["fig2"].data
        assert data["le3"] >= 0.6         # paper: ~80% <= 3 EUR
        assert data["le4"] >= data["le3"]
        assert data["unparsed"] == []     # every wall price extracts

    def test_fig4_ratios(self, results):
        data = results["fig4"].data
        assert data["third_party_ratio"] > 3      # paper: 6.4x
        assert data["tracking_ratio"] > 10        # paper: 42x

    def test_fig5_subscription_clean(self, results):
        data = results["fig5"].data
        accept_tracking = data["accept_medians"][2]
        subscription_tracking = data["subscription_medians"][2]
        assert subscription_tracking == 0.0
        assert accept_tracking > 5

    def test_fig6_no_strong_correlation(self, results):
        r = results["fig6"].data["pearson_r"]
        assert abs(r) < 0.5  # paper: no meaningful linear correlation

    def test_ublock_majority_suppressed(self, results):
        share = results["ublock"].data["suppressed_share"]
        assert 0.5 < share < 0.9  # paper: 70%

    def test_smp_rosters(self, results):
        data = results["smp"].data
        assert data["contentpass"]["partners"] > data["contentpass"]["on_toplist"]
        assert data["freechoice"]["partners"] > 0
