"""Unit and property tests for repro.urlkit."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import URLError
from repro.urlkit import (
    URL,
    is_same_site,
    is_subdomain_of,
    parse,
    public_suffix,
    registrable_domain,
)


class TestParse:
    def test_basic_https(self):
        u = parse("https://www.spiegel.de/politik/article.html")
        assert u.scheme == "https"
        assert u.host == "www.spiegel.de"
        assert u.path == "/politik/article.html"
        assert u.port is None
        assert u.effective_port == 443

    def test_http_default_port(self):
        assert parse("http://example.de/").effective_port == 80

    def test_explicit_port(self):
        u = parse("https://example.de:8443/x")
        assert u.port == 8443
        assert u.origin == "https://example.de:8443"

    def test_default_port_origin_omits_port(self):
        assert parse("https://example.de:443/").origin == "https://example.de"

    def test_query_and_fragment(self):
        u = parse("https://a.de/p?x=1&y=2#frag")
        assert u.query == "x=1&y=2"
        assert u.fragment == "frag"
        assert u.query_params == {"x": "1", "y": "2"}

    def test_host_is_lowercased(self):
        assert parse("https://EXAMPLE.DE/").host == "example.de"

    def test_missing_path_becomes_slash(self):
        assert parse("https://example.de").path == "/"

    def test_path_normalization(self):
        assert parse("https://a.de/x/../y/./z").path == "/y/z"

    def test_trailing_slash_preserved(self):
        assert parse("https://a.de/dir/").path == "/dir/"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "not a url",
            "ftp://example.de/",
            "https:///nohost",
            "https://exa mple.de/",
            "https://user@example.de/",
            "https://example.de:notaport/",
            "https://example.de:0/",
            "https://example.de:70000/",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(URLError):
            parse(bad)

    def test_str_round_trip(self):
        raw = "https://sub.example.de/a/b?x=1#f"
        assert str(parse(raw)) == raw


class TestJoin:
    BASE = parse("https://www.example.de/dir/page.html?q=1#frag")

    def test_absolute_reference(self):
        assert str(self.BASE.join("https://other.net/x")) == "https://other.net/x"

    def test_scheme_relative(self):
        joined = self.BASE.join("//cdn.example.net/lib.js")
        assert joined.scheme == "https"
        assert joined.host == "cdn.example.net"

    def test_root_relative(self):
        assert self.BASE.join("/top").path == "/top"

    def test_document_relative(self):
        assert self.BASE.join("other.html").path == "/dir/other.html"

    def test_dotdot(self):
        assert self.BASE.join("../up.html").path == "/up.html"

    def test_fragment_only(self):
        joined = self.BASE.join("#x")
        assert joined.fragment == "x"
        assert joined.path == self.BASE.path

    def test_query_only(self):
        joined = self.BASE.join("?a=b")
        assert joined.query == "a=b"
        assert joined.path == self.BASE.path

    def test_empty_reference_returns_self(self):
        assert self.BASE.join("") == self.BASE


class TestPSL:
    @pytest.mark.parametrize(
        "host,expected",
        [
            ("www.spiegel.de", "spiegel.de"),
            ("spiegel.de", "spiegel.de"),
            ("a.b.c.example.com", "example.com"),
            ("news.example.co.uk", "example.co.uk"),
            ("shop.example.com.au", "example.com.au"),
            ("x.example.net", "example.net"),
        ],
    )
    def test_registrable_domain(self, host, expected):
        assert registrable_domain(host) == expected

    @pytest.mark.parametrize("host", ["de", "co.uk", "com", "", "10.0.0.1"])
    def test_registrable_domain_none(self, host):
        assert registrable_domain(host) is None

    def test_public_suffix_longest_match(self):
        assert public_suffix("x.example.co.uk") == "co.uk"
        assert public_suffix("x.example.uk") == "uk"

    def test_unknown_tld(self):
        assert public_suffix("example.zz") is None
        assert registrable_domain("example.zz") is None

    def test_case_and_trailing_dot(self):
        assert registrable_domain("WWW.Spiegel.DE.") == "spiegel.de"


class TestSiteRelations:
    def test_same_site_across_subdomains(self):
        assert is_same_site("a.example.de", "b.example.de")

    def test_different_sites(self):
        assert not is_same_site("a.example.de", "example.net")

    def test_same_site_with_urls(self):
        assert is_same_site(parse("https://a.x.de/"), parse("https://b.x.de/"))

    def test_subdomain_of(self):
        assert is_subdomain_of("a.b.example.de", "example.de")
        assert is_subdomain_of("example.de", "example.de")
        assert not is_subdomain_of("example.de", "example.de", strict=True)
        assert not is_subdomain_of("badexample.de", "example.de")


_LABEL = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=8
)


class TestProperties:
    @given(sub=_LABEL, domain=_LABEL)
    def test_registrable_domain_is_suffix_of_host(self, sub, domain):
        host = f"{sub}.{domain}.de"
        reg = registrable_domain(host)
        assert reg == f"{domain}.de"
        assert host.endswith(reg)

    @given(host=_LABEL, path_segments=st.lists(_LABEL, max_size=4))
    def test_parse_str_round_trip(self, host, path_segments):
        path = "/" + "/".join(path_segments)
        raw = f"https://{host}.de{path}"
        parsed = parse(raw)
        assert parse(str(parsed)) == parsed

    @given(a=_LABEL, b=_LABEL)
    def test_same_site_is_symmetric(self, a, b):
        host_a, host_b = f"{a}.example.de", f"{b}.other.net"
        assert is_same_site(host_a, host_b) == is_same_site(host_b, host_a)
