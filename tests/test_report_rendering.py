"""Rendering coverage for report/figure artefacts + determinism."""

import pytest

from repro.analysis.figures import (
    CookieComparison,
    Figure1,
    Figure2,
    Figure3,
    PriceRecord,
)
from repro.analysis.report import LandscapeReport
from repro.measure.records import CookieMeasurement


class TestRenderOutputs:
    def test_landscape_render_fields(self):
        report = LandscapeReport(
            total_targets=45222,
            unique_walls=280,
            overall_rate=0.0062,
            germany_top10k_rate=0.029,
            germany_top1k_rate=0.085,
            countrywise_top1k_rate=0.017,
            placement_counts={"iframe": 132, "main": 72},
        )
        text = report.render()
        assert "45222" in text
        assert "0.62%" in text
        assert "2.90%" in text
        assert "8.50%" in text
        assert "iframe" in text

    def test_figure1_render_order(self):
        figure = Figure1(shares=[("News and Media", 0.27), ("Business", 0.09)])
        text = figure.render()
        assert text.index("News and Media") < text.index("Business")
        assert "27.0%" in text

    def test_figure2_render_heatmap_and_ecdf(self):
        figure = Figure2(records=[
            PriceRecord("a.de", "de", 299),
            PriceRecord("b.de", "de", 299),
            PriceRecord("c.it", "it", 99),
        ])
        text = figure.render()
        assert "TLD" in text
        assert "ECDF" in text
        assert "<=  3 EUR: 100.0%" in text

    def test_figure3_render(self):
        figure = Figure3(by_category={"Sports": [2.99, 3.99]})
        text = figure.render()
        assert "Sports" in text and "mean= 3.49" in text

    def test_comparison_handles_uneven_groups(self):
        a = [CookieMeasurement(vp="DE", domain="a.de", mode="accept",
                               avg_first_party=10, avg_third_party=5,
                               avg_tracking=1)]
        b = [CookieMeasurement(vp="DE", domain=f"b{i}.de", mode="accept",
                               avg_first_party=20, avg_third_party=50,
                               avg_tracking=40 + i) for i in range(3)]
        comparison = CookieComparison("t", "A", "B", a, b)
        assert comparison.medians("b")[2] == 41
        assert comparison.max_tracking("b") == 42
        assert comparison.ratio("tracking") == pytest.approx(41.0)

    def test_ratio_with_zero_baseline(self):
        a = [CookieMeasurement(vp="DE", domain="a.de", mode="x",
                               avg_tracking=0)]
        b = [CookieMeasurement(vp="DE", domain="b.de", mode="x",
                               avg_tracking=5)]
        comparison = CookieComparison("t", "A", "B", a, b)
        assert comparison.ratio("tracking") == float("inf")
        zero_b = CookieComparison("t", "A", "B", a, a)
        assert zero_b.ratio("tracking") == 1.0


class TestExperimentDeterminism:
    def test_same_seed_same_artifact(self):
        from repro.experiments import ExperimentContext, run_experiment
        from repro.webgen import build_world

        results = []
        for _ in range(2):
            world = build_world(scale=0.01, seed=77)
            ctx = ExperimentContext(world, vps=["DE", "USE"])
            results.append(run_experiment("landscape", context=ctx).data)
        assert results[0] == results[1]

    def test_visit_records_deterministic(self):
        from repro.measure.crawl import Crawler
        from repro.webgen import build_world

        snapshots = []
        for _ in range(2):
            world = build_world(scale=0.01, seed=77)
            crawler = Crawler(world)
            records = crawler.crawl_vp("DE", world.crawl_targets[:40])
            snapshots.append([
                (r.domain, r.banner_found, r.is_cookiewall) for r in records
            ])
        assert snapshots[0] == snapshots[1]
