"""Differential tests for the indexed hot paths.

Every fast path added by the indexing pass must be *invisible* in the
output: the indexed filter engine answers exactly like the naive
linear-scan oracle, indexed selector queries return exactly what a
full-tree walk returns, and a crawl with every hot path disabled
produces byte-identical records to the default configuration.

Randomized halves use Hypothesis.  CI exports
``REPRO_REQUIRE_DIFFERENTIAL=1`` so a missing Hypothesis fails the job
loudly instead of silently skipping the differential evidence.
"""

import json
import os

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - exercised only on broken installs
    if os.environ.get("REPRO_REQUIRE_DIFFERENTIAL"):
        pytest.fail(
            "hypothesis is unavailable but REPRO_REQUIRE_DIFFERENTIAL is "
            "set: the indexed-engine differential suite must not be skipped"
        )
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro import perf
from repro.adblock import FilterEngine, NaiveFilterEngine
from repro.browser import Browser
from repro.dom import Document, Element, Text
from repro.dom.selector import query_selector, query_selector_all
from repro.httpkit import Cookie, CookieJar, NaiveCookieJar, Request
from repro.measure.crawl import Crawler
from repro.netsim import Network, StaticServer
from repro.urlkit import parse
from repro.vantage import VANTAGE_POINTS
from repro.webgen import build_world

# ---------------------------------------------------------------------------
# Filter-list / request strategies
# ---------------------------------------------------------------------------

_DOMAINS = (
    "ads.example.com", "example.com", "tracker.net", "cdn.tracker.net",
    "site.de", "news.site.de", "cdn.opencmp.net", "a.co.uk", "b.a.co.uk",
    "pixel.io",
)
_TYPES = ("script", "image", "stylesheet", "subdocument", "xhr", "other")

_domain = st.sampled_from(_DOMAINS)
_tokens = st.sampled_from(
    ("ads", "pixel", "track", "banner", "adframe", "id", "slot", "Promo")
)


@st.composite
def _options(draw):
    parts = []
    if draw(st.booleans()):
        parts.append(draw(st.sampled_from(_TYPES[:4])))
    if draw(st.booleans()):
        parts.append(draw(st.sampled_from(("third-party", "~third-party"))))
    if draw(st.booleans()):
        doms = draw(st.lists(_domain, min_size=1, max_size=2))
        marks = ["~" + d if draw(st.booleans()) else d for d in doms]
        parts.append("domain=" + "|".join(marks))
    return "$" + ",".join(parts) if parts else ""


@st.composite
def _network_line(draw):
    exception = "@@" if draw(st.integers(0, 9)) == 0 else ""
    opts = draw(_options())
    if draw(st.booleans()):
        return f"{exception}||{draw(_domain)}^{opts}"
    t1, t2 = draw(_tokens), draw(_tokens)
    pattern = draw(
        st.sampled_from(
            (
                f"/{t1}?{t2}=",
                f"*cdn.{t1}.net/*",
                f"/{t1}/{t2}.",
                f"{t1}.js",
                f"-{t1}^",
                f"*{t1}*{t2}*",
            )
        )
    )
    return f"{exception}{pattern}{opts}"


@st.composite
def _cosmetic_line(draw):
    marker = "#@#" if draw(st.integers(0, 4)) == 0 else "##"
    selector = draw(
        st.sampled_from((".ad", ".banner", "#wall", "div[data-promo]", ".x-1"))
    )
    if draw(st.booleans()):
        domains = ",".join(draw(st.lists(_domain, min_size=1, max_size=2)))
        return f"{domains}{marker}{selector}"
    return f"{marker}{selector}"


_filter_list = st.lists(
    st.one_of(_network_line(), _cosmetic_line()), min_size=1, max_size=40
).map(lambda lines: "\n".join(lines) + "\n")


@st.composite
def _request(draw):
    host = draw(_domain)
    path = "/" + "/".join(draw(st.lists(_tokens, max_size=3)))
    query = f"?{draw(_tokens)}={draw(_tokens)}" if draw(st.booleans()) else ""
    initiator = (
        f"https://{draw(_domain)}/" if draw(st.booleans()) else None
    )
    return Request(
        url=f"https://{host}{path}{query}",
        initiator=initiator,
        resource_type=draw(st.sampled_from(_TYPES)),
    )


class TestFilterEngineDifferential:
    @given(
        lists=st.lists(_filter_list, min_size=1, max_size=3),
        requests=st.lists(_request(), min_size=1, max_size=30),
    )
    @settings(max_examples=150, deadline=None)
    def test_network_decisions_identical(self, lists, requests):
        naive, indexed = NaiveFilterEngine(), FilterEngine()
        naive.add_lists(lists)
        indexed.add_lists(lists)
        for request in requests:
            assert naive.should_block(request) == indexed.should_block(request)
            nf_naive = naive.matching_filter(request)
            nf_indexed = indexed.matching_filter(request)
            assert (nf_naive is None) == (nf_indexed is None)
            if nf_naive is not None:
                assert nf_naive.raw == nf_indexed.raw
            assert naive.explain(request) == indexed.explain(request)
        # One decision = one hit, identically attributed in both engines.
        assert dict(naive.hit_counts) == dict(indexed.hit_counts)

    @given(
        lists=st.lists(_filter_list, min_size=1, max_size=3),
        hosts=st.lists(
            st.one_of(_domain, _domain.map(lambda d: "deep.sub." + d)),
            min_size=1,
            max_size=10,
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_cosmetic_selectors_identical(self, lists, hosts):
        naive, indexed = NaiveFilterEngine(), FilterEngine()
        naive.add_lists(lists)
        indexed.add_lists(lists)
        for host in hosts:
            assert naive.cosmetic_selectors(host) == indexed.cosmetic_selectors(host)
            # Second call exercises the indexed engine's LRU hit path.
            assert naive.cosmetic_selectors(host) == indexed.cosmetic_selectors(host)


# ---------------------------------------------------------------------------
# DOM / selector strategies
# ---------------------------------------------------------------------------

_TAGS = ("div", "span", "p", "section", "a", "button")
_IDS = ("a", "b", "main", "wall", "x1")
_CLASSES = ("ad", "banner", "wall", "btn", "hidden")


@st.composite
def _element(draw, depth=0):
    el = Element(draw(st.sampled_from(_TAGS)))
    if draw(st.booleans()):
        el.attrs["id"] = draw(st.sampled_from(_IDS))
    classes = draw(st.lists(st.sampled_from(_CLASSES), max_size=3))
    if classes:
        el.attrs["class"] = " ".join(classes)
    if draw(st.booleans()):
        el.attrs[draw(st.sampled_from(("data-x", "role", "href")))] = draw(
            st.sampled_from(("v1", "button main", "x y", ""))
        )
    if depth < 3:
        for child in draw(
            st.lists(_element(depth=depth + 1), max_size=3 if depth < 2 else 1)
        ):
            el.append_child(child)
    if draw(st.booleans()):
        el.append_child(Text("text"))
    return el


@st.composite
def _document(draw):
    doc = Document("https://test.example/")
    for el in draw(st.lists(_element(), min_size=1, max_size=3)):
        doc.append_child(el)
    return doc


_compound = st.sampled_from(
    (
        "div", "span", "*", "section", ".ad", ".banner", "#a", "#main",
        "[data-x]", "[role~=main]", "[href^=v]", "div.ad", "span#b",
        ".ad.banner", "div:not(.ad)", "p[data-x=v1]", "[data-x$=1]",
        "[href*=utt]",
    )
)


@st.composite
def _selector(draw):
    chains = []
    for _ in range(draw(st.integers(1, 3))):
        parts = draw(st.lists(_compound, min_size=1, max_size=3))
        combinators = [
            draw(st.sampled_from((" ", " > "))) for _ in range(len(parts) - 1)
        ]
        chain = parts[0]
        for comb, part in zip(combinators, parts[1:]):
            chain += comb + part
        chains.append(chain)
    return ", ".join(chains)


def _walk_query_all(root, selector):
    with perf.disabled("selector_index"):
        return query_selector_all(root, selector)


class TestSelectorDifferential:
    @given(doc=_document(), selectors=st.lists(_selector(), min_size=1, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_indexed_queries_match_walk(self, doc, selectors):
        for selector in selectors:
            expected = _walk_query_all(doc, selector)
            assert query_selector_all(doc, selector) == expected
            first = expected[0] if expected else None
            assert query_selector(doc, selector) is first

    @given(
        doc=_document(),
        selector=_selector(),
        mutate=st.sampled_from(("detach", "set-class", "set-id", "append")),
        pick=st.integers(0, 30),
    )
    @settings(max_examples=200, deadline=None)
    def test_index_invalidation_after_mutation(self, doc, selector, mutate, pick):
        # Prime the index, mutate the tree, then require the indexed
        # answer to track the walk-based answer exactly.
        query_selector_all(doc, selector)
        elements = [el for el in doc.elements()]
        target = elements[pick % len(elements)]
        if mutate == "detach":
            target.detach()
        elif mutate == "set-class":
            target.set_attribute("class", "ad banner")
        elif mutate == "set-id":
            target.set_attribute("id", "main")
        else:
            target.append_child(Element("div", {"class": "ad"}))
        assert query_selector_all(doc, selector) == _walk_query_all(doc, selector)

    @given(doc=_document(), selector=_selector())
    @settings(max_examples=100, deadline=None)
    def test_subtree_rooted_queries_match_walk(self, doc, selector):
        for root in list(doc.elements())[:5]:
            assert query_selector_all(root, selector) == _walk_query_all(
                root, selector
            )


# ---------------------------------------------------------------------------
# Page frame-walk cache
# ---------------------------------------------------------------------------

class TestFrameWalkCache:
    def _page(self):
        net = Network()
        net.register(
            "site.de",
            StaticServer(
                '<div><template shadowrootmode="open">'
                '<iframe srcdoc="&lt;p&gt;inner&lt;/p&gt;"></iframe>'
                "</template></div>"
                '<iframe srcdoc="&lt;iframe srcdoc=&quot;&lt;b&gt;deep&lt;/b&gt;&quot;&gt;&lt;/iframe&gt;"></iframe>'
            ),
        )
        browser = Browser(net, VANTAGE_POINTS["DE"])
        return browser.visit("site.de")

    def test_cached_walk_equals_fresh_walk(self):
        page = self._page()
        with perf.disabled("frame_cache"):
            fresh_iframes = page.iframes()
            fresh_docs = list(page.all_documents())
        assert page.iframes() == fresh_iframes
        assert list(page.all_documents()) == fresh_docs
        # Second call serves from the cache and must be identical.
        assert page.iframes() == fresh_iframes
        assert list(page.all_documents()) == fresh_docs

    def test_cache_invalidates_on_mutation(self):
        page = self._page()
        before = page.iframes()
        assert before
        before[0].detach()
        with perf.disabled("frame_cache"):
            fresh = page.iframes()
            fresh_docs = list(page.all_documents())
        assert page.iframes() == fresh
        assert list(page.all_documents()) == fresh_docs
        assert len(fresh) == len(before) - 1


# ---------------------------------------------------------------------------
# End-to-end: byte-identical records with every hot path off vs on
# ---------------------------------------------------------------------------

# ---------------------------------------------------------------------------
# Cookie-jar strategies: the indexed (registrable-domain-bucketed) jar
# against the linear-scan NaiveCookieJar oracle.
# ---------------------------------------------------------------------------

#: Hosts chosen to stress the bucketing: shared registrable domains,
#: multi-label public suffixes, bare suffixes, and PSL-unknown names.
_COOKIE_HOSTS = (
    "site.de", "www.site.de", "deep.www.site.de", "other.de",
    "example.co.uk", "sub.example.co.uk", "b.sub.example.co.uk",
    "co.uk", "news.com.au", "tracker.net", "cdn.tracker.net",
    "localhost", "internal", "x.internal",
)
_COOKIE_PATHS = ("/", "/a", "/a/", "/a/b", "/ab")


@st.composite
def _jar_cookie(draw):
    return Cookie(
        name=draw(st.sampled_from(("sid", "uid", "pref", "track"))),
        value=draw(st.sampled_from(("1", "2", "x"))),
        domain=draw(st.sampled_from(_COOKIE_HOSTS)),
        path=draw(st.sampled_from(_COOKIE_PATHS)),
        secure=draw(st.booleans()),
        host_only=draw(st.booleans()),
        max_age=draw(st.sampled_from((None, 600, 0))),
        same_site=draw(st.sampled_from(("lax", "strict"))),
    )


@st.composite
def _jar_op(draw):
    kind = draw(st.sampled_from(("set", "set", "set", "clear-site")))
    if kind == "set":
        return ("set", draw(_jar_cookie()))
    return ("clear-site", draw(st.sampled_from(
        ("site.de", "example.co.uk", "tracker.net", "nosuch.de")
    )))


@st.composite
def _jar_query(draw):
    scheme = draw(st.sampled_from(("http", "https")))
    host = draw(st.sampled_from(_COOKIE_HOSTS))
    path = draw(st.sampled_from(_COOKIE_PATHS))
    first_party = draw(st.sampled_from(
        (None, "site.de", "example.co.uk", "other.de")
    ))
    return (f"{scheme}://{host}{path}", first_party)


class TestCookieJarDifferential:
    """The bucketed jar must be invisible: every query answers exactly
    like the linear scan, result order included — the Cookie headers a
    browser assembles from it feed byte-identical records."""

    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(_jar_op(), min_size=0, max_size=25),
        queries=st.lists(_jar_query(), min_size=1, max_size=8),
    )
    def test_indexed_jar_matches_naive_oracle(self, ops, queries):
        indexed, naive = CookieJar(), NaiveCookieJar()
        for op in ops:
            if op[0] == "set":
                indexed.set_cookie(op[1])
                naive.set_cookie(op[1])
            else:
                assert indexed.clear(site=op[1]) == naive.clear(site=op[1])
        assert indexed.all_cookies() == naive.all_cookies()
        for url_text, first_party in queries:
            url = parse(url_text)
            assert indexed.cookies_for(
                url, first_party_site=first_party
            ) == naive.cookies_for(url, first_party_site=first_party), (
                f"divergence for {url_text} (first_party={first_party})"
            )

    @settings(max_examples=20, deadline=None)
    @given(
        ops=st.lists(_jar_op(), min_size=1, max_size=15),
        query=_jar_query(),
    )
    def test_snapshot_preserves_equivalence(self, ops, query):
        indexed, naive = CookieJar(), NaiveCookieJar()
        for op in ops:
            if op[0] == "set":
                indexed.set_cookie(op[1])
                naive.set_cookie(op[1])
            else:
                indexed.clear(site=op[1])
                naive.clear(site=op[1])
        snap_indexed, snap_naive = indexed.snapshot(), naive.snapshot()
        indexed.clear()
        naive.clear()
        url = parse(query[0])
        assert snap_indexed.cookies_for(
            url, first_party_site=query[1]
        ) == snap_naive.cookies_for(url, first_party_site=query[1])


def _campaign():
    """A serial (workers=1, shards=1) crawl + cookie + uBlock campaign.

    Builds its own fixed-seed world: cookie measurements consume the
    world's shared visit-id stream, so both campaign runs must start
    from an identical counter state.
    """
    world = build_world(scale=0.02, seed=2023)
    crawler = Crawler(world)
    records = crawler.crawl_all(["DE", "SE"]).records
    walls = [r.domain for r in records if r.is_cookiewall][:4]
    cookies = [
        crawler.measure_accept_cookies("DE", d, repeats=2) for d in walls
    ]
    ublock = [crawler.measure_ublock("DE", d, iterations=3) for d in walls]
    return (
        json.dumps([r.to_dict() for r in records], sort_keys=True),
        json.dumps([m.to_dict() for m in cookies], sort_keys=True),
        json.dumps([r.to_dict() for r in ublock], sort_keys=True),
    )


class TestEndToEndDifferential:
    def test_crawl_measure_ublock_records_byte_identical(self):
        with perf.disabled():
            baseline = _campaign()
        indexed = _campaign()
        assert indexed[0] == baseline[0], "detection-crawl records diverged"
        assert indexed[1] == baseline[1], "cookie measurements diverged"
        assert indexed[2] == baseline[2], "uBlock records diverged"
