"""Deeper WebDriver and netsim behaviour tests."""

import pytest

from repro.browser import Browser, By, WebDriver
from repro.dom import Element
from repro.errors import NoSuchElementError
from repro.netsim import Network, OriginServer, StaticServer, VisitorContext
from repro.vantage import VANTAGE_POINTS, Regulation, get_vantage_point


def make_driver(html):
    net = Network()
    net.register("drv.de", StaticServer(html))
    browser = Browser(net, VANTAGE_POINTS["DE"])
    page = browser.visit("drv.de")
    return WebDriver(browser, page)


class TestLocators:
    HTML = (
        '<div id="a" class="x"><span class="y">one</span></div>'
        '<span class="y">two</span>'
    )

    def test_tag_name(self):
        driver = make_driver(self.HTML)
        assert len(driver.find_elements(By.TAG_NAME, "span")) == 2

    def test_id_locator(self):
        driver = make_driver(self.HTML)
        assert driver.find_element(By.ID, "a").tag_name == "div"

    def test_unknown_strategy(self):
        driver = make_driver(self.HTML)
        with pytest.raises(ValueError):
            driver.find_elements("by vibes", "x")

    def test_element_text_and_attrs(self):
        driver = make_driver(self.HTML)
        el = driver.find_element(By.CSS_SELECTOR, "#a span")
        assert el.text == "one"
        assert el.get_attribute("class") == "y"
        assert el.is_displayed()

    def test_page_source_round_trips(self):
        driver = make_driver(self.HTML)
        assert 'id="a"' in driver.page_source


class TestFrameContext:
    HTML = (
        '<iframe id="f1" srcdoc="&lt;p id=inner&gt;in frame&lt;/p&gt;"></iframe>'
        '<p id="outer">outside</p>'
    )

    def test_context_isolation(self):
        driver = make_driver(self.HTML)
        assert driver.find_elements(By.ID, "inner") == []
        driver.switch_to_frame(driver.iframe_elements()[0])
        assert driver.find_element(By.ID, "inner").text == "in frame"
        assert driver.find_elements(By.ID, "outer") == []

    def test_switch_to_unloaded_frame_raises(self):
        driver = make_driver('<iframe id="empty"></iframe><p>x</p>')
        empty = driver.find_element(By.ID, "empty")
        with pytest.raises(NoSuchElementError):
            driver.switch_to_frame(empty)

    def test_default_content_restores(self):
        driver = make_driver(self.HTML)
        driver.switch_to_frame(driver.iframe_elements()[0])
        driver.switch_to_default_content()
        assert driver.find_element(By.ID, "outer").text == "outside"


class TestVantagePoints:
    def test_get_vantage_point(self):
        assert get_vantage_point("DE").city == "Frankfurt"
        with pytest.raises(KeyError):
            get_vantage_point("MARS")

    def test_regulations(self):
        assert get_vantage_point("DE").regulation is Regulation.GDPR
        assert get_vantage_point("USW").regulation is Regulation.CCPA
        assert get_vantage_point("BR").regulation is Regulation.LGPD
        assert get_vantage_point("USE").regulation is Regulation.NONE

    def test_regulation_semantics(self):
        assert Regulation.GDPR.requires_opt_in
        assert not Regulation.CCPA.requires_opt_in
        assert Regulation.CCPA.requires_opt_out
        assert Regulation.LGPD.banner_expected
        assert not Regulation.NONE.banner_expected

    def test_eu_flags(self):
        eu = [vp.code for vp in VANTAGE_POINTS.values() if vp.in_eu]
        assert sorted(eu) == ["DE", "SE"]

    def test_str(self):
        assert "Frankfurt" in str(get_vantage_point("DE"))


class GeoServer(OriginServer):
    """Serves different content per visitor region."""

    def handle(self, request, visitor):
        if visitor.vp.in_eu:
            return self.html(request, "<p>eu content</p>")
        return self.html(request, "<p>global content</p>")


class TestGeoDependence:
    def test_servers_see_vantage_point(self):
        net = Network()
        net.register("geo.de", GeoServer())
        eu_page = Browser(net, VANTAGE_POINTS["DE"]).visit("geo.de")
        us_page = Browser(net, VANTAGE_POINTS["USE"]).visit("geo.de")
        assert "eu content" in eu_page.visible_text()
        assert "global content" in us_page.visible_text()

    def test_visitor_context_bot_flag(self):
        ctx = VisitorContext(vp=VANTAGE_POINTS["DE"], stealth=False)
        assert ctx.looks_like_bot
        assert not VisitorContext(vp=VANTAGE_POINTS["DE"]).looks_like_bot
        crawler_ua = VisitorContext(
            vp=VANTAGE_POINTS["DE"],
            user_agent="HeadlessCrawler/1.0",
        )
        assert crawler_ua.looks_like_bot


class TestClickBehaviourHook:
    def test_on_click_callback_runs(self):
        net = Network()
        net.register(
            "drv.de",
            StaticServer('<button id="b" data-action="dismiss">x</button>'),
        )
        browser = Browser(net, VANTAGE_POINTS["DE"])
        page = browser.visit("drv.de")
        button = page.document.get_element_by_id("b")
        fired = []
        button.on_click = lambda el: fired.append(el.id)
        browser.click(page, button)
        assert fired == ["b"]

    def test_click_on_clone_preserves_hook(self):
        el = Element("button")
        el.on_click = lambda e: None
        assert el.clone().on_click is el.on_click
