"""Tests for TCF consent strings, text screenshots, diagnostics, and
the paper-comparison module."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.papercheck import (
    PAPER_VALUES,
    PaperValue,
    compare_with_paper,
)
from repro.browser.screenshot import screenshot, screenshot_banner_only
from repro.consent import ConsentRecord, decode_tc_string, encode_tc_string
from repro.consent.tcf import (
    ALL_PURPOSES,
    accept_all_string,
    reject_all_string,
)
from repro.errors import ParseError
from repro.experiments.runner import ExperimentResult
from repro.measure.diagnostics import diagnose
from repro.measure.records import VisitRecord


class TestTCF:
    def test_round_trip(self):
        record = ConsentRecord(
            cmp_id=42,
            purposes=frozenset({1, 3, 7}),
            vendors=frozenset({11, 99}),
            signal="accept",
        )
        decoded = decode_tc_string(encode_tc_string(record))
        assert decoded == record

    def test_accept_all(self):
        decoded = decode_tc_string(accept_all_string(7))
        assert decoded.is_blanket_accept
        assert decoded.allows_purpose(10)
        assert decoded.cmp_id == 7

    def test_reject_all(self):
        decoded = decode_tc_string(reject_all_string(7))
        assert decoded.is_reject
        assert decoded.purposes == frozenset()

    @pytest.mark.parametrize(
        "bad",
        ["", "!!!!", "bm90LXRjZg", encode_tc_string(
            ConsentRecord(cmp_id=1, signal="accept"))[:-4] + "aaaa"],
    )
    def test_bad_strings_rejected(self, bad):
        with pytest.raises(ParseError):
            decode_tc_string(bad)

    def test_bad_records_rejected(self):
        with pytest.raises(ParseError):
            encode_tc_string(ConsentRecord(cmp_id=-1))
        with pytest.raises(ParseError):
            encode_tc_string(ConsentRecord(cmp_id=1, purposes=frozenset({11})))
        with pytest.raises(ParseError):
            encode_tc_string(ConsentRecord(cmp_id=1, signal="maybe"))

    @given(
        cmp_id=st.integers(min_value=0, max_value=9999),
        purposes=st.frozensets(st.integers(min_value=1, max_value=10)),
        vendors=st.frozensets(
            st.integers(min_value=1, max_value=5000), max_size=20
        ),
        signal=st.sampled_from(["accept", "reject"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip(self, cmp_id, purposes, vendors, signal):
        record = ConsentRecord(cmp_id, purposes, vendors, signal)
        assert decode_tc_string(encode_tc_string(record)) == record

    def test_cmp_backed_click_writes_tc_string(self, medium_world):
        from repro.bannerclick import BannerClick, accept_banner
        from repro.webgen import BannerKind

        domain = next(
            d for d in medium_world.crawl_targets
            if medium_world.sites[d].banner is BannerKind.REGULAR
            and medium_world.sites[d].cmp is not None
        )
        browser = medium_world.browser("DE")
        page = browser.visit(domain)
        detection = BannerClick().detect(page)
        accept_banner(browser, page, detection)
        cookie = browser.jar.get("cmp_consent", domain)
        assert cookie is not None
        decoded = decode_tc_string(cookie.value)
        assert decoded.is_blanket_accept
        # The site must still honour the TC-string consent on reload.
        page = browser.reload(page)
        assert any(r.is_third_party for r in page.requests)


class TestScreenshot:
    def test_wall_screenshot_shows_buttons(self, medium_world):
        domain = sorted(medium_world.wall_domains)[0]
        page = medium_world.browser("DE").visit(domain)
        shot = screenshot(page)
        assert "URL: https://" in shot
        assert "[ " in shot               # at least one button
        assert "+--" in shot              # the dialog box frame

    def test_banner_only_extraction(self, medium_world):
        domain = sorted(medium_world.wall_domains)[0]
        page = medium_world.browser("DE").visit(domain)
        box = screenshot_banner_only(page)
        assert box is not None
        assert box.startswith("+--")

    def test_no_banner_page_has_no_box(self, medium_world):
        from repro.webgen import BannerKind

        domain = next(
            d for d in medium_world.crawl_targets
            if medium_world.sites[d].banner is BannerKind.NONE
        )
        page = medium_world.browser("DE").visit(domain)
        assert screenshot_banner_only(page) is None

    def test_audit_with_screenshots(self, medium_world, medium_crawler, tmp_path):
        from repro.measure.accuracy import audit_with_screenshots

        report = audit_with_screenshots(
            medium_world, medium_crawler, tmp_path,
            sample_size=150, seed=3,
        )
        shots = list(tmp_path.glob("*.txt"))
        assert len(shots) == report.detected
        if shots:
            assert "+--" in shots[0].read_text()


class TestDiagnostics:
    def make_records(self):
        return [
            VisitRecord(vp="DE", domain="a.de", banner_found=True,
                        banner_location="main"),
            VisitRecord(vp="DE", domain="b.de", banner_found=True,
                        is_cookiewall=True, banner_location="iframe"),
            VisitRecord(vp="DE", domain="c.de", reachable=False,
                        error="ConnectionRefused"),
            VisitRecord(vp="USE", domain="a.de"),
        ]

    def test_diagnose(self):
        diag = diagnose(self.make_records())
        assert diag.total_visits == 4
        assert diag.reachable == 3
        assert diag.errors == {"ConnectionRefused": 1}
        assert diag.per_vp_visits == {"DE": 3, "USE": 1}
        assert diag.locations == {"main": 1, "iframe": 1}
        assert diag.banner_rate == pytest.approx(2 / 3)

    def test_render(self):
        text = diagnose(self.make_records()).render()
        assert "Crawl diagnostics" in text
        assert "ConnectionRefused" in text

    def test_empty(self):
        diag = diagnose([])
        assert diag.reachability == 0.0


class TestPaperCheck:
    def test_paper_values_reference_known_experiments(self):
        known = {
            "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
            "accuracy", "ublock", "landscape", "smp",
        }
        for value in PAPER_VALUES:
            assert value.experiment in known

    def test_holds_semantics(self):
        ratio = PaperValue("x", "m", 10.0, "ratio", 2.0)
        assert ratio.holds(10.0) and ratio.holds(5.0) and ratio.holds(20.0)
        assert not ratio.holds(4.9) and not ratio.holds(21.0)
        band = PaperValue("x", "m", 0.7, "band", 0.1)
        assert band.holds(0.65) and not band.holds(0.55)
        exact = PaperValue("x", "m", 0.0, "exact", 0)
        assert exact.holds(0.0) and not exact.holds(0.1)

    def test_missing_experiment_fails_gracefully(self):
        comparison = compare_with_paper([])
        assert comparison.holding == 0
        assert all(row.measured is None for row in comparison.rows)

    def test_compare_with_results(self):
        results = [
            ExperimentResult(
                "accuracy", "t", "r",
                {"full_precision": 0.97, "full_recall": 1.0},
            )
        ]
        values = [
            PaperValue("accuracy", "precision", 0.982, "band", 0.05,
                       lambda d: d["full_precision"]),
            PaperValue("accuracy", "recall", 1.0, "exact", 0,
                       lambda d: d["full_recall"]),
        ]
        comparison = compare_with_paper(results, values)
        assert comparison.holding == 2
        markdown = comparison.render_markdown()
        assert "| accuracy |" in markdown
        assert "2/2" in markdown

    def test_render_text(self):
        comparison = compare_with_paper([])
        text = comparison.render_text()
        assert "FAIL" in text

    def test_medium_world_holds_most_shapes(self, medium_context):
        """At 5% scale, the robust shape checks must already hold."""
        from repro.experiments import EXPERIMENTS, run_experiment

        results = [
            run_experiment(e, context=medium_context) for e in EXPERIMENTS
        ]
        subset = [
            v for v in PAPER_VALUES
            if (v.experiment, v.metric) in {
                ("accuracy", "recall"),
                ("fig2", "modal price bucket (EUR)"),
                ("fig5", "subscription median tracking"),
                ("fig6", "|Pearson r|"),
                ("ublock", "suppressed share"),
            }
        ]
        comparison = compare_with_paper(results, subset)
        assert comparison.holding == comparison.total, (
            comparison.render_text()
        )
