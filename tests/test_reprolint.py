"""Tests for tools/reprolint: the fixture corpus, the suppression and
baseline machinery, the CLI surface, and the repo self-lint gate.

The fixture corpus under ``tests/fixtures/reprolint/`` is the
executable specification: every rule has at least one ``bad_*`` file it
must flag (including the seeded regressions the issue names — a
``hash()``-derived seed, a ``load_records`` import in ``analysis/``, a
lambda in a shard bundle, an unlocked shared mutation) and one
``good_*`` near-miss it must not.
"""

import json
import re
import subprocess
import sys
from pathlib import Path

import pytest

from tools.reprolint.core import (
    Baseline,
    BaselineError,
    SourceFile,
    lint_sources,
    load_sources,
)
from tools.reprolint.cli import DEFAULT_PATHS, main
from tools.reprolint.rules import all_rules, rules_by_name
from tools.reprolint.rules.pickle_safety import BundlePickleSafetyRule

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "reprolint"
REPO = Path(__file__).resolve().parent.parent

#: Meta findings the framework itself can add on top of rule findings.
META_RULES = {"bad-pragma", "unused-suppression"}


def load_fixture(path: Path):
    """Parse a fixture's ``lint-as`` / ``expect`` / ``pickle-roots`` header."""
    text = path.read_text(encoding="utf-8")
    lint_as = re.search(r"^# lint-as:\s*(\S+)", text, re.MULTILINE)
    expect = re.search(r"^# expect:\s*(.+)$", text, re.MULTILINE)
    roots = re.search(r"^# pickle-roots:\s*(.+)$", text, re.MULTILINE)
    assert lint_as and expect, f"{path.name}: missing lint-as/expect header"
    expected = set(expect.group(1).split())
    if expected == {"clean"}:
        expected = set()
    return (
        SourceFile(text, rel=lint_as.group(1)),
        expected,
        roots.group(1).split() if roots else None,
    )


def lint_fixture(path: Path):
    src, expected, pickle_roots = load_fixture(path)
    rules = all_rules()
    if pickle_roots is not None:
        rules = [
            rule
            for rule in rules
            if not isinstance(rule, BundlePickleSafetyRule)
        ] + [
            BundlePickleSafetyRule(
                roots=tuple((src.rel, name) for name in pickle_roots)
            )
        ]
    return src, expected, lint_sources([src], rules)


def fixture_files():
    files = sorted(FIXTURES.glob("*.py"))
    assert files, "fixture corpus is empty"
    return files


@pytest.mark.parametrize(
    "path", fixture_files(), ids=lambda path: path.stem
)
def test_fixture_corpus(path):
    """Each fixture produces exactly its declared rule set."""
    src, expected, findings = lint_fixture(path)
    found = {finding.rule for finding in findings}
    assert found == expected, (
        f"{path.name}: expected rules {sorted(expected)}, got "
        f"{[finding.render() for finding in findings]}"
    )
    if path.name.startswith("bad_"):
        assert findings, f"{path.name}: bad fixture produced no findings"


def test_every_rule_has_bad_and_good_fixtures():
    """The corpus covers the whole registry, both directions."""
    flagged_by_bad = set()
    exercised_by_good = set()
    for path in fixture_files():
        _, expected, _ = load_fixture(path)
        if path.name.startswith("bad_"):
            flagged_by_bad |= expected
        else:
            exercised_by_good.add(path.name)
    rule_names = set(rules_by_name()) | META_RULES
    missing = rule_names - flagged_by_bad - {"unused-suppression"}
    # unused-suppression is covered by its own bad fixture; assert all.
    assert "unused-suppression" in flagged_by_bad
    assert not missing, f"rules with no bad fixture: {sorted(missing)}"
    assert exercised_by_good, "no good (near-miss) fixtures in the corpus"


# ---------------------------------------------------------------------------
# Seeded regressions the issue pins explicitly
# ---------------------------------------------------------------------------

def _lint_snippet(text: str, rel: str, rules=None):
    src = SourceFile(text, rel=rel)
    return lint_sources([src], rules or all_rules())


def test_reintroduced_salted_hash_seed_fails():
    findings = _lint_snippet(
        "def seed_for(domain):\n    return hash(domain) & 0xFFFF\n",
        rel="src/repro/webgen/banners.py",
    )
    assert [f.rule for f in findings] == ["salted-hash"]


def test_load_records_import_in_analysis_fails():
    findings = _lint_snippet(
        "from repro.measure.storage import load_records\n",
        rel="src/repro/analysis/report.py",
    )
    assert any(f.rule == "materialized-records" for f in findings)


def test_lambda_in_shard_bundle_fails():
    text = (
        "from dataclasses import dataclass\n"
        "from typing import Callable\n"
        "@dataclass\n"
        "class CrawlTask:\n"
        "    progress: Callable = lambda done: None\n"
    )
    src = SourceFile(text, rel="src/repro/measure/engine.py")
    rule = BundlePickleSafetyRule(
        roots=(("src/repro/measure/engine.py", "CrawlTask"),)
    )
    findings = lint_sources([src], [rule])
    assert [f.rule for f in findings] == ["bundle-pickle-safety"]


def test_unlocked_shared_mutation_fails():
    text = (
        "import threading\n"
        "class Stats:\n"
        "    def __init__(self):\n"
        "        self.counts = {}\n"
        "        self._lock = threading.Lock()\n"
        "    def safe(self, key):\n"
        "        with self._lock:\n"
        "            self.counts[key] = self.counts.get(key, 0) + 1\n"
        "    def racy(self, key):\n"
        "        self.counts[key] = 0\n"
    )
    findings = _lint_snippet(text, rel="src/repro/measure/fake_stats.py")
    assert [f.rule for f in findings] == ["unlocked-mutation"]
    assert findings[0].line == 10


# ---------------------------------------------------------------------------
# Suppression pragmas
# ---------------------------------------------------------------------------

def test_justified_pragma_suppresses():
    findings = _lint_snippet(
        "def f(d):\n"
        "    return hash(d)  # reprolint: disable=salted-hash -- test: local only\n",
        rel="src/repro/webgen/x.py",
    )
    assert findings == []


def test_pragma_without_justification_keeps_finding_and_flags_pragma():
    findings = _lint_snippet(
        "def f(d):\n"
        "    return hash(d)  # reprolint: disable=salted-hash\n",
        rel="src/repro/webgen/x.py",
    )
    assert {f.rule for f in findings} == {"salted-hash", "bad-pragma"}


def test_pragma_in_docstring_is_not_a_suppression():
    findings = _lint_snippet(
        '"""Docs show: # reprolint: disable=salted-hash -- why."""\n'
        "def f(d):\n"
        "    return hash(d)\n",
        rel="src/repro/webgen/x.py",
    )
    assert [f.rule for f in findings] == ["salted-hash"]


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def _hash_finding():
    findings = _lint_snippet(
        "def f(d):\n    return hash(d)\n", rel="src/repro/webgen/x.py"
    )
    assert len(findings) == 1
    return findings[0]


def test_baseline_absorbs_matching_finding():
    finding = _hash_finding()
    baseline = Baseline(
        [
            {
                "rule": finding.rule,
                "path": finding.path,
                "snippet": finding.snippet,
                "reason": "grandfathered in the test",
            }
        ]
    )
    src = SourceFile(
        "def f(d):\n    return hash(d)\n", rel="src/repro/webgen/x.py"
    )
    assert lint_sources([src], all_rules(), baseline=baseline) == []
    assert baseline.stale_entries() == []


def test_baseline_count_budget_is_per_occurrence():
    text = "def f(d):\n    return hash(d)\ndef g(d):\n    return hash(d)\n"
    finding = _hash_finding()
    baseline = Baseline(
        [
            {
                "rule": finding.rule,
                "path": finding.path,
                "snippet": finding.snippet,
                "count": 1,
                "reason": "only one occurrence grandfathered",
            }
        ]
    )
    src = SourceFile(text, rel="src/repro/webgen/x.py")
    survivors = lint_sources([src], all_rules(), baseline=baseline)
    assert len(survivors) == 1  # second occurrence is NOT absorbed


def test_baseline_requires_justification():
    with pytest.raises(BaselineError):
        Baseline([{"rule": "salted-hash", "path": "x.py", "snippet": "hash(d)"}])
    with pytest.raises(BaselineError):
        Baseline(
            [
                {
                    "rule": "salted-hash",
                    "path": "x.py",
                    "snippet": "hash(d)",
                    "reason": "   ",
                }
            ]
        )


def test_baseline_reports_stale_entries():
    baseline = Baseline(
        [
            {
                "rule": "salted-hash",
                "path": "src/repro/webgen/gone.py",
                "snippet": "return hash(d)",
                "reason": "the offending file was deleted",
            }
        ]
    )
    src = SourceFile("x = 1\n", rel="src/repro/webgen/other.py")
    lint_sources([src], all_rules(), baseline=baseline)
    assert len(baseline.stale_entries()) == 1


def test_baseline_serialize_round_trips():
    finding = _hash_finding()
    payload = Baseline.serialize([finding, finding])
    assert payload["entries"][0]["count"] == 2
    # The generated payload is loadable once reasons are real.
    payload["entries"][0]["reason"] = "justified"
    Baseline(payload["entries"])


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

def test_cli_list_rules_and_explain(capsys):
    assert main(["--list-rules"]) == 0
    listed = capsys.readouterr().out
    for name in rules_by_name():
        assert name in listed
    assert main(["--explain", "bundle-pickle-safety"]) == 0
    assert "shard bundle" in capsys.readouterr().out
    assert main(["--explain", "no-such-rule"]) == 2


def test_cli_unknown_select_is_usage_error(capsys):
    assert main(["--select", "bogus-rule", "src/repro/analysis"]) == 2


def test_cli_github_format_on_failing_file(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "webgen" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(d):\n    return hash(d)\n", encoding="utf-8")
    # Point the linter at the file via an absolute path: rel scoping
    # falls back to the absolute posix path, so fake the layout under
    # a real repo-root-relative prefix instead by linting in-process.
    src = SourceFile(bad.read_text(), rel="src/repro/webgen/bad.py")
    findings = lint_sources([src], all_rules())
    assert findings and findings[0].render_github().startswith(
        "::error file=src/repro/webgen/bad.py,line=2,"
    )


def test_cli_write_baseline_then_clean(tmp_path, monkeypatch, capsys):
    baseline_path = tmp_path / "baseline.json"
    # Generate a baseline for a deliberately dirty tree subset.
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(d):\n    return hash(d)\n", encoding="utf-8")
    # The CLI loads real files relative to the repo root; use the smp
    # module (clean) to prove --write-baseline produces a loadable file
    # even when empty.
    assert (
        main(
            [
                "--write-baseline",
                "--baseline",
                str(baseline_path),
                "src/repro/smp",
            ]
        )
        == 0
    )
    payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert payload["entries"] == []
    assert (
        main(["--baseline", str(baseline_path), "src/repro/smp"]) == 0
    )


# ---------------------------------------------------------------------------
# The acceptance gate: the shipped tree is clean
# ---------------------------------------------------------------------------

def test_repo_self_lint_is_clean():
    """`python -m tools.reprolint` exits 0 on the repo (in-process)."""
    sources = load_sources([Path(p) for p in DEFAULT_PATHS], root=REPO)
    baseline = Baseline.load(REPO / "tools" / "reprolint" / "baseline.json")
    findings = lint_sources(sources, all_rules(), baseline=baseline)
    assert findings == [], "\n".join(f.render() for f in findings)
    assert baseline.stale_entries() == []


def test_module_entry_point_runs():
    """The CI invocation (`python -m tools.reprolint --format=github`)."""
    proc = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", "--format=github"],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "reprolint: OK" in proc.stdout


def test_streaming_shim_still_works():
    """The two-line shim for the absorbed standalone script."""
    proc = subprocess.run(
        [sys.executable, "tools/check_streaming_analysis.py"],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
