"""The zero-copy record contract: bytes in, bytes out, no decode.

A record produced by a process-backend worker is serialized exactly
once (in the worker) and must reach the final spool — through
absorption, checkpoint lines, part files, and the k-way join —
without the parent ever calling ``decode_record``.  The observable
half of that contract is :func:`record_decode_count`; these tests
snapshot it around each transport leg.
"""

import json

import pytest

from repro.measure import CrawlEngine, Crawler
from repro.measure.engine import CrawlTask, TaskOutcome
from repro.measure.records import VisitRecord
from repro.measure.storage import (
    RawRecord,
    decode_record,
    encode_record,
    encode_record_line,
    iter_records,
    materialize_record,
    merge_record_spools,
    record_decode_count,
    save_records,
    validate_record_payload,
)


def _visit_record(i=0):
    return VisitRecord(
        vp="DE",
        domain=f"site-{i}.example",
        banner_found=True,
        is_cookiewall=bool(i % 2),
        has_accept=True,
        has_reject=False,
        banner_text="3,99 EUR im Monat" if i % 2 else "Alle akzeptieren",
        detected_language="de",
    )


# ---------------------------------------------------------------------------
# RawRecord semantics
# ---------------------------------------------------------------------------

def test_raw_record_round_trip_and_laziness():
    record = _visit_record(3)
    raw = RawRecord.from_record(record)
    before = record_decode_count()
    # Wrapping and re-serialising is pure pass-through.
    assert raw.raw == encode_record_line(record)
    assert encode_record_line(raw) == raw.raw
    assert record_decode_count() == before
    # First field inspection decodes — exactly once, then cached.
    assert raw.domain == record.domain
    assert record_decode_count() == before + 1
    assert raw.is_cookiewall == record.is_cookiewall
    assert raw.materialize() == record
    assert record_decode_count() == before + 1


def test_raw_record_equality_both_directions():
    record = _visit_record(1)
    raw = RawRecord.from_record(record)
    assert raw == record
    assert record == raw  # dataclass __eq__ reflects to RawRecord's
    assert raw == RawRecord.from_record(record)
    assert raw != RawRecord.from_record(_visit_record(2))
    assert materialize_record(raw) is raw.materialize()
    assert materialize_record(record) is record


def test_raw_record_from_payload_is_byte_identical():
    record = _visit_record(4)
    payload = encode_record(record)
    assert RawRecord.from_payload(payload).raw == encode_record_line(record)


def test_save_records_raw_passthrough_byte_identical(tmp_path):
    records = [_visit_record(i) for i in range(5)]
    typed_path = tmp_path / "typed.jsonl"
    raw_path = tmp_path / "raw.jsonl"
    save_records(records, typed_path)
    before = record_decode_count()
    save_records(
        (RawRecord.from_record(r) for r in records), raw_path
    )
    assert record_decode_count() == before
    assert raw_path.read_bytes() == typed_path.read_bytes()
    assert list(iter_records(raw_path)) == records


def test_validate_record_payload_refusals():
    validate_record_payload(encode_record(_visit_record()))
    with pytest.raises(ValueError, match="unknown record type"):
        validate_record_payload({"type": "Nope", "data": {}})
    with pytest.raises(ValueError, match="no data"):
        validate_record_payload({"type": "VisitRecord"})
    with pytest.raises(ValueError, match="not an object"):
        validate_record_payload("VisitRecord")


# ---------------------------------------------------------------------------
# The outcome-line splice
# ---------------------------------------------------------------------------

def _oracle_outcome_line(outcome):
    """The single-dump form the splice must reproduce byte for byte."""
    return json.dumps({
        "kind": "outcome",
        "index": outcome.index,
        "attempts": outcome.attempts,
        "error": outcome.error,
        "record": (
            encode_record(materialize_record(outcome.record))
            if outcome.record is not None else None
        ),
    }, ensure_ascii=False) + "\n"


@pytest.mark.parametrize("wrap", ["typed", "raw"])
def test_outcome_line_splice_byte_identical(wrap):
    task = CrawlTask(vp="DE", domain="site-0.example", mode="detect")
    record = _visit_record(0)
    if wrap == "raw":
        record = RawRecord.from_record(record)
    outcome = TaskOutcome(index=7, task=task, record=record, attempts=2)
    line = CrawlEngine._outcome_line(outcome)
    assert line == _oracle_outcome_line(outcome)


def test_outcome_line_without_record():
    task = CrawlTask(vp="DE", domain="down.example", mode="detect")
    outcome = TaskOutcome(
        index=1, task=task, record=None, error="boom", attempts=3
    )
    line = CrawlEngine._outcome_line(outcome)
    assert line == _oracle_outcome_line(outcome)
    assert json.loads(line)["record"] is None


# ---------------------------------------------------------------------------
# Transport legs stay decode-free
# ---------------------------------------------------------------------------

def test_merge_record_spools_does_not_decode(tmp_path):
    records = [_visit_record(i) for i in range(6)]
    parts = []
    for shard, indices in enumerate(([0, 2, 4], [1, 3, 5])):
        part = tmp_path / f"shard{shard}.part"
        with part.open("w", encoding="utf-8") as handle:
            for index in indices:
                handle.write(
                    '{"kind": "outcome", "index": %d, "record": %s}\n'
                    % (index, encode_record_line(records[index]))
                )
        parts.append(part)
    out = tmp_path / "merged.jsonl"
    before = record_decode_count()
    count = merge_record_spools(parts, out)
    assert record_decode_count() == before
    assert count == len(records)
    oracle = tmp_path / "oracle.jsonl"
    save_records(records, oracle)
    assert out.read_bytes() == oracle.read_bytes()


@pytest.fixture(scope="module")
def zero_copy_plan(small_world):
    crawler = Crawler(small_world)
    return crawler, crawler.plan_detection_crawl(
        ["DE"], small_world.crawl_targets[:24]
    )


def test_process_worker_records_reach_spool_without_decode(
    tmp_path, zero_copy_plan
):
    """The acceptance criterion: worker → absorb → part file → k-way
    join, all on serialized bytes; the parent's decode counter must
    not move."""
    crawler, plan = zero_copy_plan
    out = tmp_path / "spooled.jsonl"
    engine = CrawlEngine(
        crawler, workers=2, shards=4, backend="process",
        merge="spool", spool_path=out,
        checkpoint_path=tmp_path / "spooled.checkpoint",
    )
    before = record_decode_count()
    result = engine.execute(plan)
    assert record_decode_count() == before
    assert result.record_count == len(plan)
    # The spool holds real, readable records (decoding now is fine —
    # this is the consumer boundary).
    assert sum(1 for _ in iter_records(out)) == len(plan)


def test_memory_merge_decodes_only_at_the_consumer_boundary(
    tmp_path, zero_copy_plan
):
    crawler, plan = zero_copy_plan
    out = tmp_path / "memory.jsonl"
    engine = CrawlEngine(
        crawler, workers=2, shards=4, backend="process", spool_path=out
    )
    before = record_decode_count()
    result = engine.execute(plan)
    # Execution (including the spool write) is pass-through...
    assert record_decode_count() == before
    records = result.records
    # ...and materialisation decodes each absorbed record exactly once,
    assert record_decode_count() == before + len(records)
    assert [r.domain for r in records] == [t.domain for t in plan.tasks]
    # cached thereafter.
    result.records
    assert record_decode_count() == before + len(records)


def test_resume_replay_stays_zero_copy(tmp_path, zero_copy_plan):
    """Checkpoint replay re-emits serialized outcome lines: a resumed
    spool-merge run decodes nothing in the parent."""
    from repro.measure import FaultInjectingProcessExecutor

    crawler, plan = zero_copy_plan
    out = tmp_path / "resumed.jsonl"
    checkpoint = tmp_path / "resumed.checkpoint"
    engine = CrawlEngine(
        crawler, workers=1, shards=4, backend="process",
        merge="spool", spool_path=out, checkpoint_path=checkpoint,
        executor=FaultInjectingProcessExecutor(1, (3,)),
    )
    with pytest.raises(RuntimeError):
        engine.execute(plan)
    assert checkpoint.exists()
    before = record_decode_count()
    result = CrawlEngine(
        crawler, workers=1, shards=4, backend="process",
        merge="spool", spool_path=out, checkpoint_path=checkpoint,
        resume=True,
    ).execute(plan)
    assert record_decode_count() == before
    assert result.resumed > 0
    assert result.record_count == len(plan)
