"""Tests for world validation, temporal drift, profiles, and datasets."""

import pytest

from repro.analysis.dataset import export_dataset, load_dataset
from repro.browser.profile import load_profile, save_profile
from repro.errors import ParseError
from repro.httpkit import Cookie, CookieJar
from repro.measure.records import CookieMeasurement, UBlockRecord, VisitRecord
from repro.webgen import BannerKind, build_world
from repro.webgen.evolve import evolve_world
from repro.webgen.validate import validate_world


class TestValidation:
    def test_generated_worlds_validate(self, small_world):
        report = validate_world(small_world)
        assert report.ok, report.render()
        assert report.checks_run >= 10

    def test_validation_detects_corruption(self, small_world):
        # Corrupt a copy-ish: temporarily break one wall's region set.
        domain = sorted(small_world.wall_domains)[0]
        spec = small_world.sites[domain]
        original = spec.wall
        from repro.webgen.spec import WallSpec

        spec.wall = WallSpec(**{**original.__dict__,
                                "regions": frozenset({"USE"})})
        try:
            report = validate_world(small_world)
            assert not report.ok
            assert any(
                "invisible from the German VP" in str(v)
                for v in report.violations
            )
        finally:
            spec.wall = original

    def test_render(self, small_world):
        text = validate_world(small_world).render()
        assert "World validation" in text


class TestEvolve:
    @pytest.fixture(scope="class")
    def evolved(self):
        world = build_world(scale=0.05, seed=7)
        return world, *evolve_world(world, months=4)

    def test_original_untouched(self, evolved):
        original, later, summary = evolved
        fresh = build_world(scale=0.05, seed=7)
        assert original.wall_domains == fresh.wall_domains
        assert len(original.platforms["contentpass"].partner_domains) == (
            len(fresh.platforms["contentpass"].partner_domains)
        )

    def test_smp_rosters_grow(self, evolved):
        original, later, summary = evolved
        for name in ("contentpass", "freechoice"):
            before = len(original.platforms[name].partner_domains)
            after = len(later.platforms[name].partner_domains)
            assert after >= before
        assert summary.new_smp_partners["contentpass"] >= (
            summary.new_smp_partners["freechoice"]
        )

    def test_new_partner_sites_resolve_and_wall(self, evolved):
        from repro.bannerclick import BannerClick

        _, later, summary = evolved
        platform = later.platforms["contentpass"]
        new = [
            d for d in platform.partner_domains
            if d not in build_world(scale=0.05, seed=7).sites
        ]
        if not new:
            pytest.skip("no roster growth at this scale")
        page = later.browser("DE").visit(new[0])
        assert BannerClick().detect(page).is_cookiewall

    def test_wall_churn_recorded(self, evolved):
        _, later, summary = evolved
        for domain in summary.new_walls:
            assert later.sites[domain].banner is BannerKind.COOKIEWALL
            assert domain in later.wall_domains
        for domain in summary.dropped_walls:
            assert later.sites[domain].wall is None
            assert domain not in later.wall_domains

    def test_dead_sites_unreachable(self, evolved):
        from repro.errors import NavigationError

        _, later, summary = evolved
        if not summary.died:
            pytest.skip("no deaths at this scale")
        domain = summary.died[0]
        with pytest.raises(NavigationError):
            later.browser("DE").visit(domain)
        assert domain not in later.crawl_targets

    def test_summary_renders(self, evolved):
        _, _, summary = evolved
        text = summary.render()
        assert "drift" in text
        assert "partner websites" in text

    def test_bad_months(self, small_world):
        with pytest.raises(ValueError):
            evolve_world(small_world, months=0)

    def test_evolution_deterministic(self):
        world_a = build_world(scale=0.02, seed=9)
        world_b = build_world(scale=0.02, seed=9)
        _, summary_a = evolve_world(world_a, months=3)
        _, summary_b = evolve_world(world_b, months=3)
        assert summary_a.new_walls == summary_b.new_walls
        assert summary_a.died == summary_b.died


class TestProfiles:
    def make_jar(self):
        jar = CookieJar()
        jar.set_cookie(Cookie(name="session", value="abc", domain="smp.net",
                              host_only=False, max_age=3600))
        jar.set_cookie(Cookie(name="consent", value="accept", domain="a.de"))
        return jar

    def test_round_trip(self, tmp_path):
        jar = self.make_jar()
        path = tmp_path / "profile.json"
        assert save_profile(jar, path) == 2
        loaded = load_profile(path)
        assert len(loaded) == 2
        cookie = loaded.get("session", "smp.net")
        assert cookie.value == "abc"
        assert cookie.max_age == 3600
        assert not cookie.host_only

    def test_smp_login_survives_profile_reload(self, medium_world, tmp_path):
        platform = medium_world.platforms["contentpass"]
        if "prof@t.st" not in platform.accounts:
            platform.create_account("prof@t.st", "pw")
        platform.purchase_subscription("prof@t.st")
        browser = medium_world.browser("DE")
        browser.visit(
            f"https://{platform.domain}/login?email=prof@t.st&password=pw"
        )
        path = tmp_path / "profile.json"
        save_profile(browser.jar, path)
        # A new browser session with the restored profile is still
        # recognised as a subscriber.
        restored = medium_world.browser("DE", jar=load_profile(path))
        page = restored.visit(platform.partner_domains[0])
        assert page.flags.get("smp_subscriber")

    def test_bad_profile_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ParseError):
            load_profile(bad)
        bad.write_text("not json")
        with pytest.raises(ParseError):
            load_profile(bad)


class TestDataset:
    def test_export_and_load(self, small_world, tmp_path):
        visits = [
            VisitRecord(vp="DE", domain="a.de", is_cookiewall=True),
            VisitRecord(vp="DE", domain="b.de"),
        ]
        cookies = [
            CookieMeasurement(vp="DE", domain="a.de", mode="accept",
                              avg_tracking=40.0)
        ]
        ublock = [UBlockRecord(domain="a.de", suppressed=True)]
        directory = export_dataset(
            tmp_path / "bundle",
            world=small_world,
            visit_records=visits,
            cookie_measurements=cookies,
            ublock_records=ublock,
            description="test bundle",
        )
        dataset = load_dataset(directory)
        assert dataset.manifest["description"] == "test bundle"
        assert dataset.manifest["seed"] == small_world.config.seed
        assert len(dataset.visit_records) == 2
        assert dataset.cookiewall_domains() == ["a.de"]
        assert dataset.cookie_measurements[0].avg_tracking == 40.0
        assert dataset.ublock_records[0].suppressed
        assert len(dataset.toplists) == 7
        assert "doubleclick.net" in dataset.tracking_domains

    def test_toplists_round_trip_bucket(self, small_world, tmp_path):
        directory = export_dataset(tmp_path / "b", world=small_world)
        dataset = load_dataset(directory)
        original = small_world.toplists["DE"]
        loaded = dataset.toplists["DE"]
        assert loaded.domains() == original.domains()


class TestCliVerifyValidate:
    def test_validate_command(self, capsys):
        from repro.cli import main

        assert main(["validate", "--scale", "0.01", "--seed", "3"]) == 0
        assert "all invariants hold" in capsys.readouterr().out
