"""The distributed executor: wire protocol, byte-identity, re-dispatch,
and transport degradation.

The generic backend matrix (``test_executor_backends.py``) already runs
``executor="distributed"`` through the determinism/resume promises;
this module covers what is *specific* to the wire: frame round-trips,
malformed frames and replies, worker death mid-shard, the re-dispatch
budget, and the guarantee that transport failures yield structured
``transport``-category records — record counts always equal the plan
size, never a silent drop.
"""

import io
import json
import socket
import threading

import pytest

from repro.distributed import (
    WIRE_PROTOCOL_VERSION,
    DistributedExecutor,
    FaultInjectingDistributedExecutor,
    WireBundle,
    WireHeartbeat,
    WireHello,
    WireResult,
    WireShared,
    decode_message,
    read_frame,
    write_frame,
)
from repro.distributed.wire import encode_message
from repro.errors import (
    TransportError,
    WireProtocolError,
    WorkerLostError,
    error_category,
)
from repro.measure import CrawlEngine, Crawler
from repro.measure.instrumentation import EventLog

WORKERS = 2
SHARDS = 4


@pytest.fixture(scope="module")
def small_crawler(small_world):
    return Crawler(small_world)


@pytest.fixture(scope="module")
def detection_plan(small_world, small_crawler):
    return small_crawler.plan_detection_crawl(
        ["DE"], small_world.crawl_targets[:48]
    )


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory, small_crawler, detection_plan):
    """The uninterrupted serial spool bytes every wire run must match."""
    path = tmp_path_factory.mktemp("reference") / "serial.jsonl"
    CrawlEngine(small_crawler, spool_path=path).execute(detection_plan)
    return path.read_bytes()


def distributed_engine(crawler, executor=None, **kwargs):
    return CrawlEngine(
        crawler, workers=WORKERS, shards=SHARDS, backend="distributed",
        executor=executor, **kwargs
    )


# ---------------------------------------------------------------------------
# The wire itself
# ---------------------------------------------------------------------------
class TestWireProtocol:
    @pytest.mark.parametrize("message", [
        WireHello(worker="w1", pid=42),
        WireShared(blob="YWJj"),
        WireBundle(
            shard=3,
            tasks=((0, "DE", "a.example", "detect", 1),),
            id_bases=((0, 123456789),),
            breakers={"a.example": {"failures": 2}},
        ),
        WireHeartbeat(shard=3),
        WireResult(
            shard=3, pid=9, elapsed=0.25,
            outcomes=({"index": 0, "attempts": 1, "error": None,
                       "record": "{}"},),
            retries=({"index": 0, "attempt": 1, "error": "Timeout"},),
            breaker_events=({"domain": "a.example",
                             "transition": "open"},),
        ),
    ], ids=lambda m: type(m).__name__)
    def test_round_trip(self, message):
        assert decode_message(encode_message(message)) == message

    def test_bundle_round_trips_to_engine_shape(self):
        bundle = {
            "shard": 1,
            "tasks": [(0, "DE", "a.example", "detect", 1),
                      (7, "US", "b.example", "accept", 5)],
            "id_bases": {0: 11, 7: 22},
            "breakers": {},
            "kill_after": 1,
        }
        wire = WireBundle.from_bundle(bundle)
        assert decode_message(encode_message(wire)).to_bundle() == bundle

    @pytest.mark.parametrize("line,detail", [
        (b"not json\n", "undecodable"),
        (b"[1, 2]\n", "JSON object"),
        (b'{"type": "warp", "x": 1}\n', "unknown frame type"),
        (b'{"type": "heartbeat", "shard": 1, "extra": 2}\n',
         "unknown field"),
        (b'{"type": "heartbeat"}\n', "heartbeat"),
    ])
    def test_malformed_frames_rejected(self, line, detail):
        with pytest.raises(WireProtocolError, match=detail):
            decode_message(line)

    def test_truncated_frame_rejected(self):
        with pytest.raises(WireProtocolError, match="truncated"):
            read_frame(io.BytesIO(b'{"type": "heartbeat", "shard": 1}'))

    def test_eof_reads_as_none(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_result_must_cover_bundle_indices(self):
        bundle = WireBundle(
            shard=0,
            tasks=((0, "DE", "a.example", "detect", 1),
                   (1, "DE", "b.example", "detect", 1)),
            id_bases=((0, 1), (1, 2)),
        )
        dropped = WireResult(
            shard=0, pid=1, elapsed=0.0,
            outcomes=({"index": 0, "attempts": 1, "error": None,
                       "record": "{}"},),
        )
        with pytest.raises(WireProtocolError, match="covers indices"):
            dropped.validate_against(bundle)
        wrong_shard = WireResult(shard=5, pid=1, elapsed=0.0, outcomes=())
        with pytest.raises(WireProtocolError, match="names shard"):
            wrong_shard.validate_against(bundle)

    def test_transport_errors_have_their_own_category(self):
        assert error_category("TransportError") == "transport"
        assert error_category("WorkerLostError") == "transport"
        assert error_category("WireProtocolError") == "transport"


# ---------------------------------------------------------------------------
# Byte-identity over real sockets and worker processes
# ---------------------------------------------------------------------------
class TestDistributedRuns:
    def test_worker_killed_mid_shard_redispatches_byte_identical(
        self, tmp_path, small_crawler, detection_plan, serial_reference
    ):
        """SIGKILL one worker halfway through a shard: the lost shard
        re-runs on a surviving worker and the merged spool still equals
        the serial bytes — no degraded records, no gaps."""
        out = tmp_path / "killed.jsonl"
        log = EventLog()
        result = distributed_engine(
            small_crawler,
            executor=FaultInjectingDistributedExecutor(WORKERS, {1}),
            spool_path=out,
            event_log=log,
        ).execute(detection_plan)
        assert len(result) == len(detection_plan)
        assert not result.failures
        assert out.read_bytes() == serial_reference

    def test_multivantage_campaign_plan_distributed_byte_identical(
        self, tmp_path, small_world, small_crawler
    ):
        """The acceptance scenario: a multi-vantage campaign plan runs
        through 2 socket workers — and through 2 socket workers with
        one killed mid-shard — and both spools equal the serial one."""
        from repro.api.spec import MultiVantageSpec

        spec = MultiVantageSpec(vps=("DE", "USE"))
        targets = small_world.crawl_targets[:30]

        def campaign_plan():
            plan = small_crawler.plan_detection_crawl(
                ["DE", "USE"], targets
            )
            plan.context["multivantage"] = {
                "wave": 0, "scenario": spec.scenario().to_context(),
            }
            return plan

        serial_out = tmp_path / "serial.jsonl"
        CrawlEngine(
            small_crawler, spool_path=serial_out
        ).execute(campaign_plan())
        distributed_out = tmp_path / "distributed.jsonl"
        distributed_engine(
            small_crawler, spool_path=distributed_out
        ).execute(campaign_plan())
        assert distributed_out.read_bytes() == serial_out.read_bytes()

        killed_out = tmp_path / "killed.jsonl"
        distributed_engine(
            small_crawler,
            executor=FaultInjectingDistributedExecutor(WORKERS, {2}),
            spool_path=killed_out,
        ).execute(campaign_plan())
        assert killed_out.read_bytes() == serial_out.read_bytes()

    def test_session_multivantage_distributed_matches_serial(
        self, tmp_path, small_world
    ):
        """End to end through the public API: ``executor="distributed"``
        in the engine spec, wave spool byte-identical to serial."""
        from repro.api import EngineSpec, Session
        from repro.api.spec import MultiVantageSpec, OutputSpec

        spec = MultiVantageSpec(vps=("DE",),
                                domains=tuple(small_world.crawl_targets[:24]))
        serial_dir = tmp_path / "serial"
        Session(small_world).multivantage(
            spec, output=OutputSpec(out_dir=str(serial_dir))
        )
        distributed_dir = tmp_path / "distributed"
        Session(
            small_world,
            engine=EngineSpec(
                workers=WORKERS, shards=SHARDS, executor="distributed"
            ),
        ).multivantage(spec, output=OutputSpec(out_dir=str(distributed_dir)))
        assert (distributed_dir / "wave-00.jsonl").read_bytes() == \
            (serial_dir / "wave-00.jsonl").read_bytes()


# ---------------------------------------------------------------------------
# Transport degradation: failures become records, never gaps
# ---------------------------------------------------------------------------
def _fake_worker(executor, reply):
    """Dial *executor*'s work queue, take one bundle, answer with
    ``reply(bundle) -> bytes``, and hang up."""
    import time

    while executor.address is None:
        time.sleep(0.01)
    with socket.create_connection(executor.address, timeout=10) as conn:
        rfile = conn.makefile("rb")
        wfile = conn.makefile("wb")
        write_frame(wfile, WireHello(worker="saboteur", pid=1))
        shared = read_frame(rfile)
        assert isinstance(shared, WireShared)
        bundle = read_frame(rfile)
        assert isinstance(bundle, WireBundle)
        wfile.write(reply(bundle))
        wfile.flush()


def run_with_fake_worker(crawler, plan, reply, tmp_path):
    executor = DistributedExecutor(
        0, max_dispatches=1, connect_timeout=30.0
    )
    saboteur = threading.Thread(
        target=_fake_worker, args=(executor, reply), daemon=True
    )
    out = tmp_path / "degraded.jsonl"
    engine = CrawlEngine(
        crawler, workers=1, shards=1, backend="distributed",
        executor=executor, spool_path=out, event_log=EventLog(),
    )
    saboteur.start()
    result = engine.execute(plan)
    saboteur.join(timeout=10)
    return result, out


class TestTransportDegradation:
    def test_malformed_reply_degrades_every_task(
        self, tmp_path, small_crawler, small_world
    ):
        """A worker replying garbage (with no re-dispatch budget left)
        must yield one structured transport record per task: the record
        count equals the plan size and every failure is category
        ``transport`` — never a silent drop."""
        plan = small_crawler.plan_detection_crawl(
            ["DE"], small_world.crawl_targets[:6]
        )
        result, out = run_with_fake_worker(
            small_crawler, plan,
            lambda bundle: b"this is not a wire frame\n",
            tmp_path,
        )
        assert len(result) == len(plan)
        assert len(result.failures) == len(plan)
        for outcome in result.failures:
            assert outcome.error == "WireProtocolError"
            assert error_category(outcome.error) == "transport"
        lines = out.read_bytes().splitlines()
        assert len(lines) == len(plan)
        for line in lines:
            record = json.loads(line)
            assert record["data"]["error"] == "WireProtocolError"

    def test_undecodable_record_line_degrades_that_task(
        self, tmp_path, small_crawler, small_world
    ):
        """A structurally valid reply whose record lines do not decode
        degrades those tasks at the boundary instead of splicing poison
        into the spool."""
        def reply(bundle):
            outcomes = [
                {"index": index, "attempts": 1, "error": None,
                 "record": "{this is not json"}
                for index, *_ in bundle.tasks
            ]
            return encode_message(WireResult(
                shard=bundle.shard, pid=1, elapsed=0.0,
                outcomes=tuple(outcomes),
            ))

        plan = small_crawler.plan_detection_crawl(
            ["DE"], small_world.crawl_targets[:5]
        )
        result, out = run_with_fake_worker(
            small_crawler, plan, reply, tmp_path
        )
        assert len(result) == len(plan)
        lines = out.read_bytes().splitlines()
        assert len(lines) == len(plan)
        for line in lines:
            record = json.loads(line)
            assert record["data"]["error"] == "WireProtocolError"

    def test_no_workers_fails_fast_with_worker_lost(self, small_crawler,
                                                    small_world):
        plan = small_crawler.plan_detection_crawl(
            ["DE"], small_world.crawl_targets[:4]
        )
        engine = CrawlEngine(
            small_crawler, workers=1, shards=1, backend="distributed",
            executor=DistributedExecutor(0, connect_timeout=0.5),
        )
        with pytest.raises(WorkerLostError, match="no live workers"):
            engine.execute(plan)

    def test_unpicklable_shared_state_is_a_readable_error(self):
        executor = DistributedExecutor(0)
        with pytest.raises(TransportError, match="does not pickle"):
            executor.run_bundles(
                [{"shard": 0, "tasks": [], "id_bases": {}}],
                lambda payload: None,
                {"poison": lambda: None},
            )

    def test_hello_protocol_mismatch_strikes_the_worker(self):
        assert WireHello(worker="w", pid=1).protocol == WIRE_PROTOCOL_VERSION
