"""Tests for the measurement harness (crawls, cookies, storage)."""

import pytest

from repro.measure import (
    CookieCounts,
    count_cookies,
    load_records,
    save_records,
)
from repro.measure.accuracy import evaluate_records, random_audit
from repro.measure.records import CookieMeasurement, UBlockRecord, VisitRecord
from repro.blocklists import JustDomainsList
from repro.httpkit import Cookie, CookieJar
from repro.webgen import BannerKind


class TestCookieCounting:
    def make_jar(self):
        jar = CookieJar()
        jar.set_cookie(Cookie(name="a", value="1", domain="site.de"))
        jar.set_cookie(Cookie(name="b", value="1", domain="cdnedge.net"))
        jar.set_cookie(Cookie(name="c", value="1", domain="trackmax.com"))
        return jar

    def test_partition(self):
        counts = count_cookies(
            self.make_jar(), "site.de", JustDomainsList(["trackmax.com"])
        )
        assert counts == CookieCounts(first_party=1, third_party=2, tracking=1)

    def test_baseline_subtraction(self):
        jar = self.make_jar()
        baseline = jar.snapshot()
        jar.set_cookie(Cookie(name="new", value="1", domain="site.de"))
        counts = count_cookies(
            jar, "site.de", JustDomainsList([]), baseline=baseline
        )
        assert counts.first_party == 1
        assert counts.third_party == 0


class TestDetectionVisit:
    def test_wall_visit_record(self, medium_world, medium_crawler):
        domain = sorted(medium_world.wall_domains)[0]
        record = medium_crawler.visit("DE", domain)
        assert record.is_cookiewall
        assert record.banner_text
        assert record.detected_language != "und"

    def test_unreachable_recorded(self, medium_world, medium_crawler):
        dead = next(
            d for d, s in medium_world.sites.items() if not s.reachable
        )
        record = medium_crawler.visit("DE", dead)
        assert not record.reachable
        assert record.error

    def test_regular_site_record(self, medium_world, medium_crawler):
        domain = next(
            d for d in medium_world.crawl_targets
            if medium_world.sites[d].banner is BannerKind.REGULAR
            and medium_world.sites[d].reject_button
        )
        record = medium_crawler.visit("DE", domain)
        assert record.banner_found
        assert not record.is_cookiewall
        assert record.has_accept

    def test_eu_only_wall_invisible_from_us(self, medium_world, medium_crawler):
        eu_only = [
            d for d in medium_world.wall_domains
            if "USE" not in medium_world.sites[d].wall.regions
        ]
        if not eu_only:
            pytest.skip("no EU-only wall at this scale")
        record = medium_crawler.visit("USE", eu_only[0])
        assert not record.is_cookiewall

    def test_crawl_vp_returns_all_records(self, medium_world, medium_crawler):
        targets = medium_world.crawl_targets[:30]
        records = medium_crawler.crawl_vp("DE", targets)
        assert len(records) == 30
        assert all(r.vp == "DE" for r in records)


class TestAcceptMeasurement:
    def test_wall_accept_measurement(self, medium_world, medium_crawler):
        domain = sorted(medium_world.wall_domains)[0]
        m = medium_crawler.measure_accept_cookies("DE", domain, repeats=3)
        assert m.repeats == 3
        assert m.avg_first_party > 0
        assert m.avg_tracking > 0
        assert m.avg_third_party >= m.avg_tracking

    def test_accept_more_cookies_than_no_accept(self, medium_world, medium_crawler):
        domain = sorted(medium_world.wall_domains)[0]
        accepted = medium_crawler.measure_accept_cookies("DE", domain, repeats=2)
        # A plain visit (wall shown, nothing clicked) sets no trackers.
        jar = CookieJar()
        browser = medium_world.browser("DE", jar=jar)
        page = browser.visit(domain)
        plain = count_cookies(jar, page.site, medium_world.tracking_list)
        assert plain.tracking == 0
        assert accepted.avg_tracking > 0

    def test_repeat_averages_vary_fraction(self, medium_world, medium_crawler):
        domain = sorted(medium_world.wall_domains)[1]
        m = medium_crawler.measure_accept_cookies("DE", domain, repeats=5)
        assert len(m.per_visit) == 5


class TestSubscriptionMeasurement:
    def test_subscription_suppresses_tracking(self, medium_world, medium_crawler):
        platform = medium_world.platforms["contentpass"]
        if "t@e.st" not in platform.accounts:
            platform.create_account("t@e.st", "pw")
        platform.purchase_subscription("t@e.st")
        partner = platform.partner_domains[0]
        m = medium_crawler.measure_subscription_cookies(
            "DE", partner, platform, "t@e.st", "pw", repeats=3
        )
        assert m.error is None
        assert m.avg_tracking == 0.0
        assert m.avg_first_party > 0

    def test_bad_credentials_error(self, medium_world, medium_crawler):
        platform = medium_world.platforms["contentpass"]
        partner = platform.partner_domains[0]
        m = medium_crawler.measure_subscription_cookies(
            "DE", partner, platform, "wrong@e.st", "nope", repeats=2
        )
        assert m.error == "MeasurementError"
        assert m.repeats == 0

    def test_consent_overrides_subscription(self, medium_world):
        """Paper §5: accepted-then-subscribed users keep being tracked
        until they clear the site's cookies."""
        platform = medium_world.platforms["contentpass"]
        if "t2@e.st" not in platform.accounts:
            platform.create_account("t2@e.st", "pw")
        platform.purchase_subscription("t2@e.st")
        partner = platform.partner_domains[0]
        jar = CookieJar()
        browser = medium_world.browser("DE", jar=jar)
        browser.visit(
            f"https://{platform.domain}/login?email=t2@e.st&password=pw"
        )
        # Simulate an earlier "accept" on this site.
        spec = medium_world.sites[partner]
        jar.set_cookie(
            Cookie(name=spec.consent_cookie, value="accept", domain=partner,
                   host_only=False)
        )
        browser.visit(partner)
        counts = count_cookies(jar, partner, medium_world.tracking_list)
        assert counts.tracking > 0  # still tracked despite subscription
        # Clearing site data and revisiting restores the subscription path.
        browser.clear_site_data(partner)
        before = jar.snapshot()
        browser.visit(partner)
        counts = count_cookies(
            jar, partner, medium_world.tracking_list, baseline=before
        )
        assert counts.tracking == 0


class TestUBlockMeasurement:
    def test_smp_wall_suppressed(self, medium_world, medium_crawler):
        smp_wall = next(
            d for d in sorted(medium_world.wall_domains)
            if medium_world.sites[d].wall.serving == "smp"
        )
        record = medium_crawler.measure_ublock("DE", smp_wall, iterations=2)
        assert record.suppressed

    def test_inline_wall_not_suppressed(self, medium_world, medium_crawler):
        inline = next(
            (d for d in sorted(medium_world.wall_domains)
             if medium_world.sites[d].wall.serving == "inline"),
            None,
        )
        if inline is None:
            pytest.skip("no inline wall at this scale")
        record = medium_crawler.measure_ublock("DE", inline, iterations=2)
        assert not record.suppressed


class TestAccuracy:
    def test_evaluate_records(self, medium_world):
        records = [
            VisitRecord(vp="DE", domain=d, is_cookiewall=True)
            for d in medium_world.wall_domains
        ]
        records.append(
            VisitRecord(vp="DE", domain=list(medium_world.bait_domains)[0],
                        is_cookiewall=True)
        )
        report = evaluate_records(medium_world, records)
        assert report.true_positives == len(medium_world.wall_domains)
        assert report.false_positives == 1
        assert report.recall == 1.0
        assert report.precision < 1.0

    def test_random_audit(self, medium_world, medium_crawler):
        report = random_audit(
            medium_world, medium_crawler, sample_size=120, seed=5
        )
        assert report.recall == 1.0
        assert report.false_negatives == 0


class TestStorage:
    def test_round_trip(self, tmp_path):
        records = [
            VisitRecord(vp="DE", domain="a.de", is_cookiewall=True),
            CookieMeasurement(vp="DE", domain="a.de", mode="accept",
                              repeats=5, avg_tracking=42.5),
            UBlockRecord(domain="a.de", iterations=5, suppressed=True),
        ]
        path = tmp_path / "out" / "records.jsonl"
        assert save_records(records, path) == 3
        loaded = load_records(path)
        assert len(loaded) == 3
        assert isinstance(loaded[0], VisitRecord)
        assert loaded[1].avg_tracking == 42.5
        assert loaded[2].suppressed

    def test_unknown_type_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "Mystery", "data": {}}\n')
        with pytest.raises(ValueError):
            load_records(path)

    def test_append_mode_streams_shards(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        save_records([VisitRecord(vp="DE", domain="a.de")], path)
        save_records(
            [VisitRecord(vp="DE", domain="b.de")], path, append=True
        )
        save_records(
            [VisitRecord(vp="SE", domain="c.se")], path, append=True
        )
        assert [r.domain for r in load_records(path)] == [
            "a.de", "b.de", "c.se",
        ]

    def test_append_creates_missing_file(self, tmp_path):
        path = tmp_path / "fresh" / "records.jsonl"
        save_records([VisitRecord(vp="DE", domain="a.de")], path, append=True)
        assert len(load_records(path)) == 1

    def test_iter_records_is_lazy(self, tmp_path):
        from repro.measure import iter_records

        path = tmp_path / "lazy.jsonl"
        save_records(
            [VisitRecord(vp="DE", domain=f"site{i}.de") for i in range(5)],
            path,
        )
        iterator = iter_records(path)
        assert next(iterator).domain == "site0.de"
        assert sum(1 for _ in iterator) == 4

    def test_torn_trailing_line_skipped_with_warning(self, tmp_path):
        """The crash-mid-write case resume depends on: a writer dying
        mid-append leaves truncated JSON on the last line, which the
        reader skips (with a warning) instead of raising."""
        from repro.measure import TornRecordWarning, iter_records

        path = tmp_path / "torn.jsonl"
        save_records(
            [VisitRecord(vp="DE", domain=f"site{i}.de") for i in range(3)],
            path,
        )
        whole = path.read_text(encoding="utf-8")
        path.write_text(whole + whole.splitlines()[0][:37],
                        encoding="utf-8")
        with pytest.warns(TornRecordWarning, match="torn trailing line"):
            records = list(iter_records(path))
        assert [r.domain for r in records] == [
            "site0.de", "site1.de", "site2.de",
        ]

    def test_mid_file_corruption_still_raises(self, tmp_path):
        """Only the *final* line gets torn-write tolerance; garbage
        followed by more records is real corruption."""
        path = tmp_path / "corrupt.jsonl"
        save_records(
            [VisitRecord(vp="DE", domain=f"site{i}.de") for i in range(2)],
            path,
        )
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        path.write_text(
            lines[0] + lines[1][:25] + "\n" + lines[0], encoding="utf-8"
        )
        with pytest.raises(ValueError, match="invalid JSON mid-file"):
            load_records(path)


class TestMergedJsonl:
    """Edge cases of the k-way spool join (`iter_merged_jsonl` /
    `merge_record_spools`): the exact shapes a crashed or tiny crawl
    leaves behind."""

    @staticmethod
    def _part(tmp_path, name, records_by_index):
        from repro.measure.storage import encode_record_line

        path = tmp_path / name
        with path.open("w", encoding="utf-8") as handle:
            for index, record in records_by_index:
                handle.write(
                    '{"kind": "outcome", "index": %d, "record": %s}\n'
                    % (index, encode_record_line(record))
                )
        return path

    @staticmethod
    def _records(indices):
        return [
            (i, VisitRecord(vp="DE", domain=f"site{i}.de")) for i in indices
        ]

    def test_torn_trailing_line_in_one_part(self, tmp_path):
        """A shard writer that died mid-append must not poison the
        join: its complete lines merge, the torn tail is skipped with
        the usual warning."""
        from repro.measure import TornRecordWarning
        from repro.measure.storage import merge_record_spools

        whole = self._part(tmp_path, "a.part", self._records([0, 2, 4]))
        torn = self._part(tmp_path, "b.part", self._records([1, 3]))
        with torn.open("a", encoding="utf-8") as handle:
            handle.write(torn.read_text(encoding="utf-8").splitlines()[0][:41])
        out = tmp_path / "merged.jsonl"
        with pytest.warns(TornRecordWarning, match="torn trailing line"):
            count = merge_record_spools([whole, torn], out)
        assert count == 5
        assert [r.domain for r in load_records(out)] == [
            f"site{i}.de" for i in range(5)
        ]

    def test_empty_part_files_are_harmless(self, tmp_path):
        """A shard that crashed before its first flush leaves an empty
        part; the merge must treat it as contributing nothing."""
        from repro.measure.storage import merge_record_spools

        full = self._part(tmp_path, "a.part", self._records([0, 1, 2]))
        for name in ("empty1.part", "empty2.part"):
            (tmp_path / name).write_text("", encoding="utf-8")
        out = tmp_path / "merged.jsonl"
        count = merge_record_spools(
            [tmp_path / "empty1.part", full, tmp_path / "empty2.part"], out
        )
        assert count == 3
        assert [r.domain for r in load_records(out)] == [
            "site0.de", "site1.de", "site2.de",
        ]

    def test_single_shard_merge_is_byte_identical_passthrough(
        self, tmp_path
    ):
        """shards=1 degenerates to a copy: the join of one part must
        reproduce `save_records` over the same records byte for byte."""
        from repro.measure.storage import merge_record_spools

        records = [r for _, r in self._records(range(4))]
        part = self._part(tmp_path, "only.part", self._records(range(4)))
        out = tmp_path / "merged.jsonl"
        oracle = tmp_path / "oracle.jsonl"
        assert merge_record_spools([part], out) == 4
        save_records(records, oracle)
        assert out.read_bytes() == oracle.read_bytes()
