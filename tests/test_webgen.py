"""Tests for the synthetic web generator (population invariants)."""

import pytest

from repro import thirdparty
from repro.errors import WorldGenerationError
from repro.urlkit import public_suffix, registrable_domain
from repro.webgen import BannerKind, WorldConfig, build_world
from repro.webgen.config import (
    PLACEMENT_MIX,
    PRICE_MATRIX,
    SERVING_MIX,
    WALL_COHORTS,
    apportion,
)
from repro.webgen.toplist import BUCKET_TOP1K, Toplist, union_of


class TestApportion:
    def test_exact_total_list(self):
        assert sum(apportion([3, 2, 5], 17)) == 17

    def test_exact_total_dict(self):
        result = apportion({"a": 1, "b": 1, "c": 1}, 10)
        assert sum(result.values()) == 10
        assert set(result) == {"a", "b", "c"}

    def test_proportionality(self):
        result = apportion([70, 20, 10], 100)
        assert result == [70, 20, 10]

    def test_zero_total(self):
        assert apportion([1, 2], 0) == [0, 0]

    def test_rejects_zero_weights(self):
        with pytest.raises(WorldGenerationError):
            apportion([0, 0], 5)


class TestConfigConstants:
    def test_cohorts_sum_to_280(self):
        assert sum(c[0] for c in WALL_COHORTS) == 280

    def test_cohort_marginals(self):
        by_toplist = {}
        by_tld = {}
        for count, country, tld, _lang, _vis in WALL_COHORTS:
            by_toplist[country] = by_toplist.get(country, 0) + count
            by_tld[tld] = by_tld.get(tld, 0) + count
        assert by_toplist == {"DE": 259, "SE": 15, "AU": 5, "BR": 1}
        assert by_tld["de"] == 233
        assert by_tld["com"] == 14
        assert by_tld["net"] == 14
        assert by_tld["it"] == 6

    def test_placement_mix_sums(self):
        assert sum(PLACEMENT_MIX.values()) == 280
        assert PLACEMENT_MIX["shadow-open"] + PLACEMENT_MIX["shadow-closed"] == 76
        assert PLACEMENT_MIX["iframe"] == 132

    def test_serving_mix_sums(self):
        assert sum(SERVING_MIX.values()) == 280
        blocked = (
            SERVING_MIX["smp:contentpass"]
            + SERVING_MIX["smp:freechoice"]
            + SERVING_MIX["cmp-listed"]
        )
        assert blocked == 196  # the 70% uBlock suppresses

    def test_price_matrix_sums(self):
        assert sum(sum(row.values()) for row in PRICE_MATRIX.values()) == 280

    def test_scale_validation(self):
        with pytest.raises(WorldGenerationError):
            WorldConfig(scale=0.0)
        with pytest.raises(WorldGenerationError):
            WorldConfig(scale=1.5)


class TestWorldStructure:
    def test_toplists_have_exact_size(self, small_world):
        expected = small_world.config.n_list_size
        for toplist in small_world.toplists.values():
            assert len(toplist) == expected

    def test_crawl_targets_are_reachable_union(self, small_world):
        union = set(union_of(small_world.toplists.values()))
        targets = set(small_world.crawl_targets)
        assert targets <= union
        for domain in targets:
            assert small_world.sites[domain].reachable

    def test_walls_counted(self, small_world):
        assert len(small_world.wall_domains) == small_world.config.n_walls

    def test_every_wall_on_some_toplist(self, small_world):
        for domain in small_world.wall_domains:
            assert small_world.sites[domain].listings

    def test_wall_tlds_match_domains(self, small_world):
        for domain in small_world.wall_domains:
            spec = small_world.sites[domain]
            assert public_suffix(domain) == spec.tld

    def test_walls_always_visible_from_germany(self, small_world):
        for domain in small_world.wall_domains:
            spec = small_world.sites[domain]
            assert "DE" in spec.wall.regions

    def test_smp_partner_counts(self, small_world):
        cfg = small_world.config
        cp = small_world.platforms["contentpass"]
        fc = small_world.platforms["freechoice"]
        assert len(cp.partner_domains) == cfg.n_contentpass
        assert len(fc.partner_domains) == cfg.n_freechoice

    def test_offlist_partners_not_in_toplists(self, small_world):
        for name, domains in small_world.offlist_partner_domains.items():
            for domain in domains:
                assert not small_world.sites[domain].listings

    def test_smp_partners_priced_at_platform_fee(self, small_world):
        for platform in small_world.platforms.values():
            for domain in platform.partner_domains:
                spec = small_world.sites[domain]
                assert spec.wall.monthly_price_cents == 299

    def test_bait_sites_are_regular_banners(self, small_world):
        for domain in small_world.bait_domains:
            spec = small_world.sites[domain]
            assert spec.banner is BannerKind.BAIT
            assert spec.wall is None

    def test_unreachable_sites_refuse(self, small_world):
        unreachable = [
            d for d, s in small_world.sites.items() if not s.reachable
        ]
        assert unreachable, "expected some unreachable sites"
        assert not small_world.network.knows("never-registered.example") or True

    def test_category_db_covers_walls(self, small_world):
        for domain in small_world.wall_domains:
            assert domain in small_world.category_db

    def test_deterministic_rebuild(self):
        a = build_world(scale=0.01, seed=42)
        b = build_world(scale=0.01, seed=42)
        assert a.crawl_targets == b.crawl_targets
        assert a.wall_domains == b.wall_domains

    def test_different_seeds_differ(self):
        a = build_world(scale=0.01, seed=1)
        b = build_world(scale=0.01, seed=2)
        assert a.crawl_targets != b.crawl_targets


class TestWallPopulation:
    def test_placement_mix_present(self, medium_world):
        placements = {
            medium_world.sites[d].wall.placement
            for d in medium_world.wall_domains
        }
        assert "iframe" in placements
        assert "main" in placements
        assert placements & {"shadow-open", "shadow-closed"}

    def test_serving_mix_present(self, medium_world):
        servings = {
            medium_world.sites[d].wall.serving
            for d in medium_world.wall_domains
        }
        assert servings == {"inline", "cmp", "smp"}

    def test_wall_languages_have_templates(self, medium_world):
        from repro.webgen.cookiewalls import _TEXTS

        for domain in medium_world.wall_domains:
            lang = medium_world.sites[domain].language
            assert lang in _TEXTS or lang == "en"

    def test_de_list_walls_dominate(self, medium_world):
        on_de = sum(
            1 for d in medium_world.wall_domains
            if medium_world.sites[d].on_list("DE")
        )
        assert on_de / len(medium_world.wall_domains) > 0.8

    def test_some_walls_in_top1k(self, medium_world):
        de = medium_world.toplists["DE"]
        top = set(de.domains(BUCKET_TOP1K))
        assert any(d in top for d in medium_world.wall_domains)

    def test_wall_prices_positive_and_bounded(self, medium_world):
        for domain in medium_world.wall_domains:
            cents = medium_world.sites[domain].wall.monthly_price_cents
            assert 1 <= cents <= 1000


class TestToplistClass:
    def test_buckets(self):
        toplist = Toplist("XX", [f"d{i}.de" for i in range(20)], top_bucket=5)
        assert toplist.bucket_of("d0.de") == "top1k"
        assert toplist.bucket_of("d10.de") == "top10k"
        assert toplist.bucket_of("missing.de") is None
        assert len(toplist.domains("top1k")) == 5
        assert len(toplist.domains()) == 20

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            Toplist("XX", ["a.de", "a.de"], top_bucket=1)

    def test_union(self):
        a = Toplist("A", ["x.de", "y.de"], 1)
        b = Toplist("B", ["y.de", "z.de"], 1)
        assert union_of([a, b]) == ["x.de", "y.de", "z.de"]

    def test_unknown_bucket(self):
        toplist = Toplist("XX", ["a.de"], 1)
        with pytest.raises(ValueError):
            toplist.domains("top100")


class TestThirdPartyRegistry:
    def test_kinds_partition(self):
        for party in thirdparty.all_parties():
            assert party.kind in ("ad", "analytics", "cdn", "social", "cmp", "smp")

    def test_ads_are_tracked_and_blocked(self):
        for party in thirdparty.by_kind("ad"):
            assert party.in_justdomains
            assert party.in_easylist

    def test_cdns_clean(self):
        for party in thirdparty.by_kind("cdn"):
            assert not party.in_justdomains
            assert not party.in_easylist

    def test_smps_annoyance_listed(self):
        for party in thirdparty.by_kind("smp"):
            assert party.in_annoyances

    def test_cmp_split(self):
        assert len(thirdparty.cmp_domains(listed=True)) == 5
        assert len(thirdparty.cmp_domains(listed=False)) == 3

    def test_domains_unique_and_valid(self):
        domains = [p.domain for p in thirdparty.all_parties()]
        assert len(domains) == len(set(domains))
        for domain in domains:
            assert registrable_domain(domain) == domain
