"""Shared fixtures: small worlds reused across the test suite."""

import pytest

from repro.experiments import ExperimentContext
from repro.measure.crawl import Crawler
from repro.webgen import build_world


@pytest.fixture(scope="session")
def small_world():
    """A ~1k-site world (2% scale) for fast integration tests."""
    return build_world(scale=0.02, seed=7)


@pytest.fixture(scope="session")
def medium_world():
    """A ~2.5k-site world (5% scale) with a richer wall population."""
    return build_world(scale=0.05, seed=7)


@pytest.fixture(scope="session")
def medium_crawler(medium_world):
    return Crawler(medium_world)


@pytest.fixture(scope="session")
def medium_context(medium_world, medium_crawler):
    return ExperimentContext(medium_world, crawler=medium_crawler)
