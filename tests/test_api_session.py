"""Tests for the Session facade and RunResult handle.

The load-bearing guarantee: for a fixed world seed the same campaign
produces byte-identical spooled JSONL through every entry point —
``Session.run(spec)``, the CLI with flags, the CLI with ``--config``
— and a resumed session run matches an uninterrupted one byte for
byte (the acceptance criterion of the api redesign).
"""

import pytest

from repro.api import (
    CrawlSpec,
    EngineSpec,
    LongitudinalSpec,
    MeasureSpec,
    OutputSpec,
    RunSpec,
    RunResult,
    Session,
    SpecError,
    WorldSpec,
)
from repro.cli import main
from repro.measure import Crawler, CrawlEngine, FaultInjectingExecutor
from repro.measure.records import CookieMeasurement, VisitRecord
from repro.webgen import build_world

WORLD = WorldSpec(scale=0.01, seed=3)


class TestSessionBasics:
    def test_world_is_lazy_and_cached(self):
        session = Session(WORLD)
        assert session._world is None
        world = session.world
        assert session.world is world

    def test_accepts_prebuilt_world(self, medium_world):
        session = Session(medium_world)
        assert session.world is medium_world
        assert session.world_spec.seed == medium_world.config.seed

    def test_rejects_garbage_world(self):
        with pytest.raises(SpecError, match="world must be"):
            Session(42)

    def test_run_requires_a_spec(self):
        with pytest.raises(SpecError, match="nothing to run"):
            Session(WORLD).run()

    def test_run_refuses_foreign_world(self):
        session = Session(WORLD)
        alien = RunSpec(kind="crawl", world=WorldSpec(scale=0.01, seed=4))
        with pytest.raises(SpecError, match="differs from this session"):
            session.run(alien)

    def test_constructor_engine_override_wins_for_default_spec(self):
        # Session(spec, engine=...) promises the override stays in
        # force for .run(); parallel mode switches measurements to
        # per-task visit ids, so the records are observably different
        # from the spec's serial engine.
        spec = RunSpec(
            kind="measure", world=WORLD,
            measure=MeasureSpec(vp="DE", repeats=2),
        )
        overridden = Session(spec, engine=EngineSpec(workers=2)).run()
        parallel = Session(WORLD, engine=EngineSpec(workers=2)).measure(
            MeasureSpec(vp="DE", repeats=2)
        )
        serial = Session(spec).run()
        assert [r.to_dict() for r in overridden.records] == [
            r.to_dict() for r in parallel.records
        ]
        assert [r.to_dict() for r in overridden.records] != [
            r.to_dict() for r in serial.records
        ]

    def test_executor_and_merge_flow_through_session(self, tmp_path):
        """`EngineSpec(executor=..., merge="spool")` runs end to end:
        the spool is byte-identical to the serial in-memory run and
        the RunResult stays lazy (records stream from the spool)."""
        serial_out = tmp_path / "serial.jsonl"
        spec = RunSpec(
            kind="crawl", world=WORLD, crawl=CrawlSpec(vps=("DE",)),
            output=OutputSpec(path=str(serial_out)),
        )
        Session(spec).run()
        for backend in ("thread", "process"):
            out = tmp_path / f"{backend}.jsonl"
            result = Session(
                RunSpec(
                    kind="crawl", world=WORLD, crawl=CrawlSpec(vps=("DE",)),
                    engine=EngineSpec(
                        workers=2, executor=backend, merge="spool"
                    ),
                    output=OutputSpec(path=str(out)),
                )
            ).run()
            assert out.read_bytes() == serial_out.read_bytes(), backend
            # Spool-merged runs stay lazy: nothing materialised yet.
            assert result._records is None
            assert result.record_count == len(result.records)

    def test_spool_merge_without_output_refused_not_downgraded(self):
        # Mirrors the resume rule: silently merging in memory when the
        # caller asked for the streaming mode is never acceptable.
        session = Session(WORLD, engine=EngineSpec(merge="spool"))
        with pytest.raises(SpecError, match="--merge spool"):
            session.crawl(CrawlSpec(vps=("DE",)))

    def test_measure_pre_pass_survives_spool_merge(self, tmp_path):
        """`measure` without explicit domains runs an in-memory
        detection pre-pass; merge='spool' must not break it (the
        pre-pass has no spool of its own)."""
        out = tmp_path / "m.jsonl"
        result = Session(
            WORLD, engine=EngineSpec(merge="spool")
        ).measure(
            MeasureSpec(vp="DE", repeats=1),
            output=OutputSpec(path=str(out)),
        )
        assert out.exists()
        assert result.record_count > 0

    def test_resume_without_output_refused_not_ignored(self):
        session = Session(WORLD, engine=EngineSpec(resume=True))
        with pytest.raises(SpecError, match="--resume requires"):
            session.crawl(CrawlSpec(vps=("DE",)))

    def test_measure_resume_pre_pass_does_not_trip_guard(self, tmp_path):
        out = tmp_path / "cookies.jsonl"
        session = Session(WORLD, engine=EngineSpec(resume=True))
        # No checkpoint exists yet: resume starts fresh, and the
        # in-memory detection pre-pass must not be refused.
        result = session.measure(
            MeasureSpec(vp="DE", repeats=1),
            output=OutputSpec(path=str(out)),
        )
        assert result.record_count > 0
        assert out.exists()

    def test_run_adopts_spec_engine(self, tmp_path):
        # A spec with different engine settings runs (through a
        # sibling session), rather than being refused.
        out = tmp_path / "out.jsonl"
        spec = RunSpec(
            kind="crawl", world=WORLD, engine=EngineSpec(workers=2),
            crawl=CrawlSpec(vps=("DE",)),
            output=OutputSpec(path=str(out)),
        )
        result = Session(WORLD).run(spec)
        assert result.record_count > 0
        assert out.exists()


class TestEntryPointEquivalence:
    """Flags, --config, and Session.run must write the same bytes."""

    def _config(self, tmp_path, out):
        config = tmp_path / "run.toml"
        config.write_text(
            "kind = \"crawl\"\n"
            "[world]\nscale = 0.01\nseed = 3\n"
            "[engine]\nworkers = 2\nshards = 4\n"
            "[crawl]\nvps = [\"DE\"]\n"
            f"[output]\npath = \"{out}\"\n"
        )
        return config

    def test_crawl_three_ways_byte_identical(self, tmp_path):
        flag_out = tmp_path / "flags.jsonl"
        config_out = tmp_path / "config.jsonl"
        api_out = tmp_path / "api.jsonl"

        assert main(
            ["crawl", "--scale", "0.01", "--seed", "3", "--vp", "DE",
             "--workers", "2", "--shards", "4", "--out", str(flag_out)]
        ) == 0
        assert main(
            ["crawl", "--config", str(self._config(tmp_path, config_out))]
        ) == 0
        spec = RunSpec(
            kind="crawl", world=WORLD,
            engine=EngineSpec(workers=2, shards=4),
            crawl=CrawlSpec(vps=("DE",)),
            output=OutputSpec(path=str(api_out)),
        )
        Session(spec).run()

        flag_bytes = flag_out.read_bytes()
        assert flag_bytes == config_out.read_bytes()
        assert flag_bytes == api_out.read_bytes()

    def test_measure_flags_vs_config_byte_identical(self, tmp_path):
        flag_out = tmp_path / "flags.jsonl"
        config_out = tmp_path / "config.jsonl"
        config = tmp_path / "run.toml"
        config.write_text(
            "[world]\nscale = 0.01\nseed = 3\n"
            "[measure]\nvp = \"DE\"\nmode = \"accept\"\nrepeats = 2\n"
            f"[output]\npath = \"{config_out}\"\n"
        )
        assert main(
            ["measure", "--scale", "0.01", "--seed", "3", "--vp", "DE",
             "--mode", "accept", "--repeats", "2", "--out", str(flag_out)]
        ) == 0
        assert main(["measure", "--config", str(config)]) == 0
        assert flag_out.read_bytes() == config_out.read_bytes()

    def test_cli_flag_overrides_config_value(self, tmp_path, capsys):
        out = tmp_path / "out.jsonl"
        config = self._config(tmp_path, out)
        assert main(
            ["spec", "crawl", "--config", str(config), "--workers", "8",
             "--seed", "11"]
        ) == 0
        printed = capsys.readouterr().out
        import json

        payload = json.loads(printed)
        assert payload["engine"]["workers"] == 8      # flag wins
        assert payload["world"]["seed"] == 11          # flag wins
        assert payload["world"]["scale"] == 0.01       # file value kept
        assert payload["crawl"]["vps"] == ["DE"]       # file value kept


class TestSessionResume:
    def test_resumed_session_run_matches_uninterrupted(self, tmp_path):
        out = tmp_path / "records.jsonl"
        world = build_world(scale=0.01, seed=3)
        crawler = Crawler(world)
        plan = crawler.plan_detection_crawl(["DE"])
        engine = CrawlEngine(
            crawler, workers=4, shards=8, spool_path=out,
            checkpoint_path=f"{out}.checkpoint",
            executor=FaultInjectingExecutor(4, (1, 3, 5, 7), partial=True),
        )
        with pytest.raises(RuntimeError):
            engine.execute(plan)
        assert (tmp_path / "records.jsonl.checkpoint").exists()

        spec = RunSpec(
            kind="crawl", world=WORLD,
            engine=EngineSpec(workers=4, shards=8, resume=True),
            crawl=CrawlSpec(vps=("DE",)),
            output=OutputSpec(path=str(out)),
        )
        resumed = Session(spec).run()
        assert resumed.resumed > 0
        assert not (tmp_path / "records.jsonl.checkpoint").exists()

        clean_out = tmp_path / "clean.jsonl"
        clean_spec = RunSpec(
            kind="crawl", world=WORLD,
            engine=EngineSpec(workers=4, shards=8),
            crawl=CrawlSpec(vps=("DE",)),
            output=OutputSpec(path=str(clean_out)),
        )
        Session(clean_spec).run()
        assert out.read_bytes() == clean_out.read_bytes()


class TestMeasureDefaults:
    def test_default_domains_are_detected_walls(self):
        session = Session(WORLD)
        result = session.measure(MeasureSpec(vp="DE", repeats=1))
        assert result.record_count > 0
        assert all(
            isinstance(r, CookieMeasurement) for r in result.iter_records()
        )
        walls = Session(WORLD).crawl(CrawlSpec(vps=("DE",)))
        from repro.measure.crawl import CrawlResult

        expected = CrawlResult(records=walls.records).cookiewall_domains()
        assert [r.domain for r in result.iter_records()] == expected


class TestLongitudinalSession:
    def test_waves_and_summary(self, tmp_path):
        session = Session(WORLD, engine=EngineSpec(workers=2))
        result = session.longitudinal(
            LongitudinalSpec(vp="DE", months=(0, 2)),
            output=OutputSpec(out_dir=str(tmp_path)),
        )
        assert result.campaign is not None
        assert len(result.campaign.waves) == 2
        waves = result.summary()["waves"]
        assert [w["months"] for w in waves] == [0, 2]
        assert (tmp_path / "wave-00.jsonl").exists()
        assert (tmp_path / "wave-02.jsonl").exists()
        # Records stream in wave order.
        assert result.record_count == sum(w["visits"] for w in waves)


class TestRunResultPersistence:
    def test_spooled_result_round_trips_lazily(self, tmp_path):
        out = tmp_path / "records.jsonl"
        spec = RunSpec(
            kind="crawl", world=WORLD, crawl=CrawlSpec(vps=("DE",)),
            output=OutputSpec(path=str(out)),
        )
        result = Session(spec).run()
        manifest = result.save(tmp_path / "result.json")

        loaded = RunResult.load(manifest)
        assert loaded.spec == result.spec
        assert loaded.summary() == result.summary()
        # Lazy: nothing materialised until records are asked for…
        assert loaded._records is None
        # …then the stream equals the live run's records.
        assert [r.to_dict() for r in loaded.iter_records()] == [
            r.to_dict() for r in result.records
        ]
        assert all(isinstance(r, VisitRecord) for r in loaded.iter_records())

    def test_in_memory_result_embeds_records(self, tmp_path):
        session = Session(WORLD)
        result = session.crawl(CrawlSpec(vps=("DE",)))   # no spool
        manifest = result.save(tmp_path / "result.json")
        loaded = RunResult.load(manifest)
        assert [r.to_dict() for r in loaded.iter_records()] == [
            r.to_dict() for r in result.records
        ]

    def test_load_refuses_non_manifest(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text("{}")
        with pytest.raises(SpecError, match="not a run-result"):
            RunResult.load(path)

    def test_failures_round_trip(self, tmp_path):
        from repro.api import RunFailure

        spec = RunSpec(kind="crawl", world=WORLD)
        result = RunResult(
            spec,
            records=[],
            failures=[RunFailure(
                index=3, vp="DE", domain="x.de", mode="detect",
                error="NetworkError", attempts=2,
            )],
            executed=1,
        )
        loaded = RunResult.load(result.save(tmp_path / "r.json"))
        assert loaded.failures == result.failures
        assert not loaded.ok
