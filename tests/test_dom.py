"""Unit tests for repro.dom node/tree semantics, shadow DOM, iframes."""

import pytest

from repro.dom import Comment, Document, Element, Text, to_html
from repro.errors import ClosedShadowRootError, DOMError


def make_doc():
    doc = Document("https://example.de/")
    html = Element("html")
    body = Element("body")
    head = Element("head")
    doc.append_child(html)
    html.append_child(head)
    html.append_child(body)
    return doc, body


class TestTree:
    def test_append_sets_parent(self):
        parent = Element("div")
        child = Element("p")
        parent.append_child(child)
        assert child.parent is parent
        assert parent.children == [child]

    def test_append_moves_node(self):
        a, b, child = Element("div"), Element("div"), Element("p")
        a.append_child(child)
        b.append_child(child)
        assert child.parent is b
        assert a.children == []

    def test_cannot_append_ancestor(self):
        a, b = Element("div"), Element("p")
        a.append_child(b)
        with pytest.raises(DOMError):
            b.append_child(a)

    def test_cannot_append_self(self):
        a = Element("div")
        with pytest.raises(DOMError):
            a.append_child(a)

    def test_insert_before(self):
        parent = Element("div")
        first, second = Element("a"), Element("b")
        parent.append_child(second)
        parent.insert_before(first, second)
        assert [c.tag for c in parent.children] == ["a", "b"]

    def test_insert_before_bad_reference(self):
        parent, other = Element("div"), Element("div")
        reference = Element("p")
        other.append_child(reference)
        with pytest.raises(DOMError):
            parent.insert_before(Element("a"), reference)

    def test_detach(self):
        parent, child = Element("div"), Element("p")
        parent.append_child(child)
        child.detach()
        assert child.parent is None
        assert parent.children == []

    def test_descendants_document_order(self):
        doc, body = make_doc()
        div = Element("div")
        span = Element("span")
        body.append_child(div)
        div.append_child(span)
        tags = [n.tag for n in doc.descendants() if isinstance(n, Element)]
        assert tags == ["html", "head", "body", "div", "span"]

    def test_ancestors(self):
        doc, body = make_doc()
        el = Element("p")
        body.append_child(el)
        chain = list(el.ancestors())
        assert chain[0] is body
        assert chain[-1] is doc

    def test_owner_document(self):
        doc, body = make_doc()
        el = Element("p")
        body.append_child(el)
        assert el.owner_document is doc


class TestElement:
    def test_attributes(self):
        el = Element("div", {"id": "x", "class": "a b"})
        assert el.id == "x"
        assert el.classes == ["a", "b"]
        el.set_attribute("Data-Foo", "1")
        assert el.get_attribute("data-foo") == "1"
        el.remove_attribute("data-foo")
        assert not el.has_attribute("data-foo")

    def test_add_class_idempotent(self):
        el = Element("div")
        el.add_class("x")
        el.add_class("x")
        assert el.classes == ["x"]

    def test_style_parsing(self):
        el = Element("div", {"style": "display: NONE; color:red"})
        assert el.style == {"display": "none", "color": "red"}

    def test_visibility(self):
        doc, body = make_doc()
        outer = Element("div", {"style": "display:none"})
        inner = Element("p")
        body.append_child(outer)
        outer.append_child(inner)
        assert not inner.is_visible()
        outer.set_attribute("style", "display:block")
        assert inner.is_visible()

    def test_hidden_attribute(self):
        el = Element("div", {"hidden": ""})
        assert not el.is_visible()

    def test_text_content(self):
        el = Element("div")
        el.append_child(Text("  hello "))
        child = Element("b")
        child.append_child(Text("world"))
        el.append_child(child)
        assert el.text_content() == "hello world"


class TestShadowDOM:
    def test_attach_open_shadow(self):
        host = Element("div")
        root = host.attach_shadow(mode="open")
        assert host.shadow_root is root
        assert root.host is host

    def test_closed_shadow_hidden_from_script(self):
        host = Element("div")
        host.attach_shadow(mode="closed")
        assert host.shadow_root is None
        assert host.attached_shadow_root is not None

    def test_require_open_raises_for_closed(self):
        host = Element("div")
        host.attach_shadow(mode="closed")
        with pytest.raises(ClosedShadowRootError):
            host.require_open_shadow_root()

    def test_double_attach_fails(self):
        host = Element("div")
        host.attach_shadow(mode="open")
        with pytest.raises(DOMError):
            host.attach_shadow(mode="open")

    def test_invalid_mode(self):
        with pytest.raises(DOMError):
            Element("div").attach_shadow(mode="translucent")

    def test_descendants_skip_shadow_by_default(self):
        doc, body = make_doc()
        host = Element("div")
        body.append_child(host)
        shadow = host.attach_shadow(mode="open")
        hidden = Element("button")
        shadow.append_child(hidden)
        tags = [n.tag for n in doc.descendants() if isinstance(n, Element)]
        assert "button" not in tags
        tags_pierced = [
            n.tag
            for n in doc.descendants(include_shadow=True)
            if isinstance(n, Element)
        ]
        assert "button" in tags_pierced

    def test_text_content_pierce(self):
        host = Element("div")
        shadow = host.attach_shadow(mode="closed")
        shadow.append_child(Text("Pay 3.99 EUR"))
        assert host.text_content() == ""
        assert host.text_content(pierce=True) == "Pay 3.99 EUR"

    def test_shadow_root_owner_document(self):
        doc, body = make_doc()
        host = Element("div")
        body.append_child(host)
        shadow = host.attach_shadow(mode="open")
        el = Element("p")
        shadow.append_child(el)
        assert el.owner_document is doc


class TestIframes:
    def test_content_document_is_isolated(self):
        doc, body = make_doc()
        iframe = Element("iframe")
        body.append_child(iframe)
        inner = Document("https://cmp.example.net/banner")
        inner_body = Element("body")
        inner.append_child(inner_body)
        inner_body.append_child(Text("Subscribe for 2.99 EUR"))
        iframe.content_document = inner
        assert doc.text_content() == ""
        assert "Subscribe" in doc.text_content(pierce=True)

    def test_descendants_include_frames(self):
        doc, body = make_doc()
        iframe = Element("iframe")
        body.append_child(iframe)
        inner = Document()
        inner.append_child(Element("p"))
        iframe.content_document = inner
        tags = [
            n.tag
            for n in doc.descendants(include_frames=True)
            if isinstance(n, Element)
        ]
        assert "p" in tags


class TestClone:
    def test_deep_clone_independent(self):
        el = Element("div", {"id": "x"})
        el.append_child(Text("hi"))
        copy = el.clone()
        copy.set_attribute("id", "y")
        assert el.id == "x"
        assert isinstance(copy.children[0], Text)
        assert copy.children[0] is not el.children[0]

    def test_clone_preserves_shadow(self):
        el = Element("div")
        shadow = el.attach_shadow(mode="closed")
        shadow.append_child(Text("secret"))
        copy = el.clone()
        assert copy.attached_shadow_root is not None
        assert copy.attached_shadow_root.mode == "closed"
        assert copy.text_content(pierce=True) == "secret"

    def test_clone_preserves_iframe_document(self):
        el = Element("iframe")
        inner = Document()
        inner.append_child(Element("p"))
        el.content_document = inner
        copy = el.clone()
        assert copy.content_document is not None
        assert copy.content_document is not inner

    def test_shallow_clone(self):
        el = Element("div")
        el.append_child(Element("p"))
        copy = el.clone(deep=False)
        assert copy.children == []


class TestDocument:
    def test_sections(self):
        doc, body = make_doc()
        assert doc.body is body
        assert doc.head is not None
        assert doc.document_element.tag == "html"

    def test_title(self):
        doc, _ = make_doc()
        title = Element("title")
        title.append_child(Text("News site"))
        doc.head.append_child(title)
        assert doc.title == "News site"

    def test_get_element_by_id(self):
        doc, body = make_doc()
        el = Element("div", {"id": "target"})
        body.append_child(el)
        assert doc.get_element_by_id("target") is el
        assert doc.get_element_by_id("missing") is None

    def test_serialization_has_doctype(self):
        doc, _ = make_doc()
        assert to_html(doc).startswith("<!DOCTYPE html>")


class TestComment:
    def test_comment_round_trip(self):
        doc, body = make_doc()
        body.append_child(Comment("note"))
        assert "<!--note-->" in to_html(doc)
