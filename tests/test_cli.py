"""Tests for the repro-cookiewalls command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment in ("table1", "fig4", "ublock", "accuracy"):
            assert experiment in out


class TestStats:
    def test_stats_output(self, capsys):
        assert main(["stats", "--scale", "0.01", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "crawl_targets:" in out
        assert "walls:" in out


class TestRun:
    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99", "--scale", "0.01"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_single(self, capsys):
        assert main(["run", "landscape", "--scale", "0.02", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Cookiewall landscape" in out

    def test_run_json(self, capsys):
        assert main(
            ["run", "accuracy", "--scale", "0.02", "--seed", "7", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "accuracy" in payload
        assert payload["accuracy"]["full_recall"] == 1.0


class TestCrawlAndReport:
    def test_crawl_writes_and_report_reads(self, tmp_path, capsys):
        out_file = tmp_path / "records.jsonl"
        assert main(
            ["crawl", "--scale", "0.01", "--seed", "3",
             "--vp", "DE", "--vp", "USE", "--out", str(out_file)]
        ) == 0
        assert out_file.exists()
        crawl_out = capsys.readouterr().out
        assert "wrote" in crawl_out

        assert main(["report", str(out_file)]) == 0
        report_out = capsys.readouterr().out
        assert "DE:" in report_out
        assert "unique cookiewall domains:" in report_out


class TestExportToplists:
    def test_export(self, tmp_path, capsys):
        assert main(
            ["export-toplists", "--scale", "0.01", "--seed", "3",
             "--dir", str(tmp_path)]
        ) == 0
        files = sorted(p.name for p in tmp_path.glob("crux_*.csv"))
        assert len(files) == 7
        assert "crux_de.csv" in files
