"""Tests for the repro-cookiewalls command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment in ("table1", "fig4", "ublock", "accuracy"):
            assert experiment in out


class TestStats:
    def test_stats_output(self, capsys):
        assert main(["stats", "--scale", "0.01", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "crawl_targets:" in out
        assert "walls:" in out


class TestRun:
    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99", "--scale", "0.01"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_single(self, capsys):
        assert main(["run", "landscape", "--scale", "0.02", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Cookiewall landscape" in out

    def test_run_json(self, capsys):
        assert main(
            ["run", "accuracy", "--scale", "0.02", "--seed", "7", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "accuracy" in payload
        assert payload["accuracy"]["full_recall"] == 1.0


class TestCrawlAndReport:
    def test_crawl_writes_and_report_reads(self, tmp_path, capsys):
        out_file = tmp_path / "records.jsonl"
        assert main(
            ["crawl", "--scale", "0.01", "--seed", "3",
             "--vp", "DE", "--vp", "USE", "--out", str(out_file)]
        ) == 0
        assert out_file.exists()
        crawl_out = capsys.readouterr().out
        assert "wrote" in crawl_out

        assert main(["report", str(out_file)]) == 0
        report_out = capsys.readouterr().out
        assert "DE:" in report_out
        assert "unique cookiewall domains:" in report_out

    def test_parallel_crawl_matches_serial(self, tmp_path, capsys):
        serial_file = tmp_path / "serial.jsonl"
        parallel_file = tmp_path / "parallel.jsonl"
        assert main(
            ["crawl", "--scale", "0.01", "--seed", "3",
             "--vp", "DE", "--out", str(serial_file)]
        ) == 0
        assert main(
            ["crawl", "--scale", "0.01", "--seed", "3", "--vp", "DE",
             "--workers", "4", "--shards", "8", "--out", str(parallel_file)]
        ) == 0
        assert serial_file.read_text() == parallel_file.read_text()

    def test_crawl_checkpoint_consumed_on_success(self, tmp_path, capsys):
        out_file = tmp_path / "records.jsonl"
        assert main(
            ["crawl", "--scale", "0.01", "--seed", "3",
             "--vp", "DE", "--out", str(out_file)]
        ) == 0
        assert not (tmp_path / "records.jsonl.checkpoint").exists()


class TestResume:
    def _crashed_checkpoint(self, tmp_path, vps=("DE",)):
        """The on-disk state a killed `crawl` run leaves behind."""
        from repro.measure import Crawler, CrawlEngine, FaultInjectingExecutor
        from repro.webgen import build_world

        out = tmp_path / "records.jsonl"
        world = build_world(scale=0.01, seed=3)
        crawler = Crawler(world)
        plan = crawler.plan_detection_crawl(list(vps))
        engine = CrawlEngine(
            crawler, workers=4, shards=8, spool_path=out,
            checkpoint_path=f"{out}.checkpoint",
            executor=FaultInjectingExecutor(4, (1, 3, 5, 7)),
        )
        with pytest.raises(RuntimeError):
            engine.execute(plan)
        return out

    def test_crawl_resume_completes_interrupted_run(self, tmp_path, capsys):
        out_file = self._crashed_checkpoint(tmp_path)
        assert (tmp_path / "records.jsonl.checkpoint").exists()
        assert main(
            ["crawl", "--scale", "0.01", "--seed", "3", "--vp", "DE",
             "--workers", "4", "--shards", "8", "--resume",
             "--out", str(out_file)]
        ) == 0
        assert "replayed from checkpoint" in capsys.readouterr().out
        assert not (tmp_path / "records.jsonl.checkpoint").exists()

        # The resumed output equals an uninterrupted run's, byte for byte.
        clean = tmp_path / "clean.jsonl"
        assert main(
            ["crawl", "--scale", "0.01", "--seed", "3",
             "--vp", "DE", "--out", str(clean)]
        ) == 0
        assert out_file.read_bytes() == clean.read_bytes()

    def test_resume_refuses_fingerprint_mismatch(self, tmp_path, capsys):
        out_file = self._crashed_checkpoint(tmp_path)
        # Same output path, different world seed: must refuse, exit 2.
        assert main(
            ["crawl", "--scale", "0.01", "--seed", "4", "--vp", "DE",
             "--resume", "--out", str(out_file)]
        ) == 2
        assert "refusing to resume" in capsys.readouterr().err


class TestLongitudinal:
    def test_longitudinal_reports_drift(self, tmp_path, capsys):
        out_dir = tmp_path / "waves"
        assert main(
            ["longitudinal", "--scale", "0.02", "--seed", "7",
             "--month", "0", "--month", "4", "--workers", "2",
             "--out-dir", str(out_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "Longitudinal campaign (2 waves, vp=DE)" in out
        assert "month 0 -> month 4" in out
        assert "SMP roster growth" in out
        assert (out_dir / "wave-00.jsonl").exists()
        assert (out_dir / "wave-04.jsonl").exists()

    def test_longitudinal_rejects_bad_months(self, capsys):
        assert main(
            ["longitudinal", "--scale", "0.01", "--seed", "3",
             "--month", "4", "--month", "0"]
        ) == 2
        assert "months must be strictly increasing" in capsys.readouterr().err

    def test_longitudinal_resume_requires_out_dir(self, capsys):
        assert main(
            ["longitudinal", "--scale", "0.01", "--seed", "3", "--resume"]
        ) == 2
        assert "--resume requires --out-dir" in capsys.readouterr().err


class TestMultiVantageReport:
    def test_campaign_dir_expands_to_wave_spools(self, tmp_path, capsys):
        """``report`` accepts a campaign --out-dir directly and reads
        the same wave spools the explicit file list would."""
        out_dir = tmp_path / "campaign"
        assert main(
            ["multivantage", "--scale", "0.01", "--seed", "3",
             "--vps", "USE", "--vps", "DE", "--month", "0", "--month", "2",
             "--out-dir", str(out_dir)]
        ) == 0
        capsys.readouterr()

        waves = [str(out_dir / f"wave-{m:02d}.jsonl") for m in (0, 2)]
        assert main(["report", "--product", "discrepancy", *waves]) == 0
        from_files = capsys.readouterr().out
        assert main(
            ["report", "--product", "discrepancy", str(out_dir)]
        ) == 0
        assert capsys.readouterr().out == from_files
        assert "per-domain discrepancies" in from_files

        # The walls product expands the directory the same way.
        assert main(["report", str(out_dir)]) == 0
        assert "unique cookiewall domains:" in capsys.readouterr().out

    def test_empty_dir_is_an_error(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["report", str(empty)]) == 2
        assert "no wave-*.jsonl spools" in capsys.readouterr().err


class TestMeasure:
    def test_measure_streams_records(self, tmp_path, capsys):
        from repro.measure import iter_records
        from repro.measure.records import CookieMeasurement

        out_file = tmp_path / "cookies.jsonl"
        assert main(
            ["measure", "--scale", "0.01", "--seed", "3", "--vp", "DE",
             "--mode", "accept", "--repeats", "2",
             "--workers", "2", "--shards", "4", "--out", str(out_file)]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        records = list(iter_records(out_file))
        assert records
        assert all(isinstance(r, CookieMeasurement) for r in records)
        assert all(r.mode == "accept" for r in records)

    def test_measure_ublock_explicit_domains(self, tmp_path, capsys):
        from repro.measure import iter_records
        from repro.measure.records import UBlockRecord
        from repro.webgen import build_world

        world = build_world(scale=0.01, seed=3)
        domain = sorted(world.wall_domains)[0]
        out_file = tmp_path / "ublock.jsonl"
        assert main(
            ["measure", "--scale", "0.01", "--seed", "3",
             "--mode", "ublock", "--repeats", "2",
             "--domain", domain, "--out", str(out_file)]
        ) == 0
        (record,) = list(iter_records(out_file))
        assert isinstance(record, UBlockRecord)
        assert record.domain == domain


class TestSpecSubcommand:
    def test_prints_resolved_defaults(self, capsys):
        from repro.api import SPEC_SCHEMA_VERSION

        assert main(["spec", "crawl"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SPEC_SCHEMA_VERSION
        assert payload["kind"] == "crawl"
        assert payload["world"] == {"scale": 0.05, "seed": 2023}
        assert payload["engine"]["workers"] == 1

    def test_flags_resolve_into_spec(self, capsys):
        assert main(
            ["spec", "measure", "--scale", "0.01", "--mode", "ublock",
             "--workers", "4", "--out", "u.jsonl"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["measure"]["mode"] == "ublock"
        assert payload["engine"]["workers"] == 4
        assert payload["output"]["path"] == "u.jsonl"

    def test_invalid_spec_exits_2(self, capsys):
        assert main(
            ["spec", "longitudinal", "--month", "4", "--month", "0"]
        ) == 2
        assert "strictly increasing" in capsys.readouterr().err


class TestConfigFlag:
    def test_crawl_config_vs_flags_byte_identical(self, tmp_path, capsys):
        flag_out = tmp_path / "flags.jsonl"
        config_out = tmp_path / "config.jsonl"
        config = tmp_path / "run.toml"
        config.write_text(
            '[world]\nscale = 0.01\nseed = 3\n'
            '[crawl]\nvps = ["DE"]\n'
            f'[output]\npath = "{config_out}"\n'
        )
        assert main(
            ["crawl", "--scale", "0.01", "--seed", "3",
             "--vp", "DE", "--out", str(flag_out)]
        ) == 0
        assert main(["crawl", "--config", str(config)]) == 0
        assert flag_out.read_bytes() == config_out.read_bytes()

    def test_config_kind_conflict_exits_2(self, tmp_path, capsys):
        config = tmp_path / "run.toml"
        config.write_text('kind = "measure"\n')
        assert main(["crawl", "--config", str(config)]) == 2
        assert "requested" in capsys.readouterr().err

    def test_missing_out_reported(self, tmp_path, capsys):
        assert main(["crawl", "--scale", "0.01"]) == 2
        assert "output path is required" in capsys.readouterr().err


class TestCheckpointCompactVerb:
    def test_compacts_crashed_checkpoint(self, tmp_path, capsys):
        # Build a crashed checkpoint via the fault-injecting engine.
        from repro.measure import Crawler, CrawlEngine, FaultInjectingExecutor
        from repro.webgen import build_world

        spool = tmp_path / "records.jsonl"
        world = build_world(scale=0.01, seed=3)
        crawler = Crawler(world)
        plan = crawler.plan_detection_crawl(["DE"])
        engine = CrawlEngine(
            crawler, workers=4, shards=8, spool_path=spool,
            checkpoint_path=f"{spool}.checkpoint",
            executor=FaultInjectingExecutor(4, (1, 3), partial=True),
        )
        with pytest.raises(RuntimeError):
            engine.execute(plan)
        checkpoint = tmp_path / "records.jsonl.checkpoint"
        assert main(["checkpoint", "compact", str(checkpoint)]) == 0
        assert "kept" in capsys.readouterr().out
        # Still resumable afterwards.
        assert main(
            ["crawl", "--scale", "0.01", "--seed", "3", "--vp", "DE",
             "--workers", "4", "--shards", "8", "--resume",
             "--out", str(spool)]
        ) == 0
        assert "replayed from checkpoint" in capsys.readouterr().out

    def test_refuses_non_checkpoint(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.checkpoint"
        bogus.write_text('{"kind": "outcome"}\n')
        assert main(["checkpoint", "compact", str(bogus)]) == 2
        assert "not a crawl checkpoint" in capsys.readouterr().err


class TestExportToplists:
    def test_export(self, tmp_path, capsys):
        assert main(
            ["export-toplists", "--scale", "0.01", "--seed", "3",
             "--dir", str(tmp_path)]
        ) == 0
        files = sorted(p.name for p in tmp_path.glob("crux_*.csv"))
        assert len(files) == 7
        assert "crux_de.csv" in files
