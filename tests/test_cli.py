"""Tests for the repro-cookiewalls command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment in ("table1", "fig4", "ublock", "accuracy"):
            assert experiment in out


class TestStats:
    def test_stats_output(self, capsys):
        assert main(["stats", "--scale", "0.01", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "crawl_targets:" in out
        assert "walls:" in out


class TestRun:
    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99", "--scale", "0.01"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_single(self, capsys):
        assert main(["run", "landscape", "--scale", "0.02", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Cookiewall landscape" in out

    def test_run_json(self, capsys):
        assert main(
            ["run", "accuracy", "--scale", "0.02", "--seed", "7", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "accuracy" in payload
        assert payload["accuracy"]["full_recall"] == 1.0


class TestCrawlAndReport:
    def test_crawl_writes_and_report_reads(self, tmp_path, capsys):
        out_file = tmp_path / "records.jsonl"
        assert main(
            ["crawl", "--scale", "0.01", "--seed", "3",
             "--vp", "DE", "--vp", "USE", "--out", str(out_file)]
        ) == 0
        assert out_file.exists()
        crawl_out = capsys.readouterr().out
        assert "wrote" in crawl_out

        assert main(["report", str(out_file)]) == 0
        report_out = capsys.readouterr().out
        assert "DE:" in report_out
        assert "unique cookiewall domains:" in report_out

    def test_parallel_crawl_matches_serial(self, tmp_path, capsys):
        serial_file = tmp_path / "serial.jsonl"
        parallel_file = tmp_path / "parallel.jsonl"
        assert main(
            ["crawl", "--scale", "0.01", "--seed", "3",
             "--vp", "DE", "--out", str(serial_file)]
        ) == 0
        assert main(
            ["crawl", "--scale", "0.01", "--seed", "3", "--vp", "DE",
             "--workers", "4", "--shards", "8", "--out", str(parallel_file)]
        ) == 0
        assert serial_file.read_text() == parallel_file.read_text()


class TestMeasure:
    def test_measure_streams_records(self, tmp_path, capsys):
        from repro.measure import iter_records
        from repro.measure.records import CookieMeasurement

        out_file = tmp_path / "cookies.jsonl"
        assert main(
            ["measure", "--scale", "0.01", "--seed", "3", "--vp", "DE",
             "--mode", "accept", "--repeats", "2",
             "--workers", "2", "--shards", "4", "--out", str(out_file)]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        records = list(iter_records(out_file))
        assert records
        assert all(isinstance(r, CookieMeasurement) for r in records)
        assert all(r.mode == "accept" for r in records)

    def test_measure_ublock_explicit_domains(self, tmp_path, capsys):
        from repro.measure import iter_records
        from repro.measure.records import UBlockRecord
        from repro.webgen import build_world

        world = build_world(scale=0.01, seed=3)
        domain = sorted(world.wall_domains)[0]
        out_file = tmp_path / "ublock.jsonl"
        assert main(
            ["measure", "--scale", "0.01", "--seed", "3",
             "--mode", "ublock", "--repeats", "2",
             "--domain", domain, "--out", str(out_file)]
        ) == 0
        (record,) = list(iter_records(out_file))
        assert isinstance(record, UBlockRecord)
        assert record.domain == domain


class TestExportToplists:
    def test_export(self, tmp_path, capsys):
        assert main(
            ["export-toplists", "--scale", "0.01", "--seed", "3",
             "--dir", str(tmp_path)]
        ) == 0
        files = sorted(p.name for p in tmp_path.glob("crux_*.csv"))
        assert len(files) == 7
        assert "crux_de.csv" in files
