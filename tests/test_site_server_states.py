"""Unit tests for the site server's visitor-state machine.

The server's decision table (who sees the wall, when trackers render)
drives every headline number in the paper; this battery pins each cell
of the consent × region × subscription matrix.
"""


from repro.httpkit import Headers, Request
from repro.netsim import VisitorContext
from repro.vantage import VANTAGE_POINTS
from repro.webgen.sites import SiteServer
from repro.webgen.spec import BannerKind, SiteSpec, WallSpec

EU_ONLY = frozenset({"DE", "SE"})
ALL = frozenset(VANTAGE_POINTS)


def make_wall_spec(regions=ALL, smp=None):
    return SiteSpec(
        domain="state.de",
        tld="de",
        language="de",
        category="News and Media",
        banner=BannerKind.COOKIEWALL,
        reject_button=False,
        site_name="State",
        smp=smp,
        wall=WallSpec(
            placement="main",
            serving="smp" if smp else "inline",
            provider=f"{smp}.net" if smp else None,
            monthly_price_cents=299,
            display_currency="EUR",
            billing_period="month",
            regions=regions,
        ),
    )


def make_regular_spec(audience="eu"):
    return SiteSpec(
        domain="state.de",
        tld="de",
        language="de",
        category="Business",
        banner=BannerKind.REGULAR,
        banner_audience=audience,
        site_name="State",
    )


def states(spec, vp_code, cookie=""):
    headers = Headers()
    if cookie:
        headers.add("cookie", cookie)
    request = Request(url="https://state.de/", headers=headers)
    visitor = VisitorContext(vp=VANTAGE_POINTS[vp_code])
    return SiteServer._states(spec, request, visitor)


class TestWallStates:
    def test_fresh_eu_visit_shows_wall_no_trackers(self):
        consent, rejected, sub, wall, banner, trackers = states(
            make_wall_spec(), "DE"
        )
        assert wall and not trackers and not consent

    def test_consented_eu_visit_loads_trackers(self):
        consent, _, _, wall, _, trackers = states(
            make_wall_spec(), "DE", cookie="cw_consent=accept"
        )
        assert consent and not wall and trackers

    def test_non_eu_out_of_region_tracks_without_wall(self):
        _, _, _, wall, _, trackers = states(
            make_wall_spec(regions=EU_ONLY), "USE"
        )
        assert not wall and trackers

    def test_eu_out_of_region_stays_gdpr_safe(self):
        # A DE-only wall: Swedish visitors get neither wall nor trackers.
        _, _, _, wall, _, trackers = states(
            make_wall_spec(regions=frozenset({"DE"})), "SE"
        )
        assert not wall and not trackers

    def test_non_eu_in_region_gets_wall_and_no_trackers(self):
        _, _, _, wall, _, trackers = states(make_wall_spec(), "USE")
        assert wall and not trackers

    def test_subscriber_suppresses_wall_and_trackers(self):
        spec = make_wall_spec(smp="contentpass")
        _, _, sub, wall, _, trackers = states(
            spec, "DE", cookie="contentpass_subscriber=1"
        )
        assert sub and not wall and not trackers

    def test_consent_beats_subscription(self):
        """Paper §5: prior consent keeps tracking alive for subscribers."""
        spec = make_wall_spec(smp="contentpass")
        consent, _, sub, wall, _, trackers = states(
            spec, "DE",
            cookie="contentpass_subscriber=1; cw_consent=accept",
        )
        assert consent and sub and trackers and not wall


class TestRegularStates:
    def test_eu_visit_shows_banner_gates_trackers(self):
        _, _, _, _, banner, trackers = states(make_regular_spec(), "DE")
        assert banner and not trackers

    def test_non_eu_visit_tracks_without_banner(self):
        _, _, _, _, banner, trackers = states(make_regular_spec(), "IN")
        assert not banner and trackers

    def test_audience_all_shows_banner_everywhere(self):
        _, _, _, _, banner, trackers = states(
            make_regular_spec(audience="all"), "IN"
        )
        assert banner and not trackers

    def test_consent_loads_trackers_and_hides_banner(self):
        consent, _, _, _, banner, trackers = states(
            make_regular_spec(), "DE", cookie="cmp_consent=accept"
        )
        assert consent and trackers and not banner

    def test_reject_suppresses_both(self):
        _, rejected, _, _, banner, trackers = states(
            make_regular_spec(), "DE", cookie="cmp_consent=reject"
        )
        assert rejected and not banner and not trackers

    def test_reject_also_gates_non_eu(self):
        _, rejected, _, _, _, trackers = states(
            make_regular_spec(), "IN", cookie="cmp_consent=reject"
        )
        assert rejected and not trackers

    def test_tcf_accept_string_counts_as_consent(self):
        from repro.consent.tcf import accept_all_string

        token = accept_all_string(12)
        consent, _, _, _, banner, trackers = states(
            make_regular_spec(), "DE", cookie=f"cmp_consent={token}"
        )
        assert consent and trackers and not banner

    def test_tcf_reject_string_counts_as_reject(self):
        from repro.consent.tcf import reject_all_string

        token = reject_all_string(12)
        _, rejected, _, _, banner, trackers = states(
            make_regular_spec(), "DE", cookie=f"cmp_consent={token}"
        )
        assert rejected and not trackers

    def test_garbage_consent_value_ignored(self):
        consent, rejected, _, _, banner, _ = states(
            make_regular_spec(), "DE", cookie="cmp_consent=gibberish!!"
        )
        assert not consent and not rejected and banner


class TestNoBannerSites:
    def test_banner_none_tracks_by_default(self):
        spec = SiteSpec(
            domain="state.de", tld="de", language="de",
            category="Business", site_name="S",
        )
        _, _, _, wall, banner, trackers = states(spec, "DE")
        assert not wall and not banner and trackers
