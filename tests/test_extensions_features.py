"""Tests for the extension features: Priv-Accept baseline, OpenWPM-style
instrumentation, bot detection, reject measurements, CrUX export,
ad-block hit logging, and the ASCII renderers."""

import pytest

from repro.adblock import FilterEngine, easylist
from repro.analysis.render import (
    ascii_boxplot,
    ascii_heatmap,
    ascii_scatter,
)
from repro.bannerclick import BannerClick
from repro.bannerclick.priv_accept import PrivAccept, compare_detection
from repro.browser import Browser
from repro.errors import AnalysisError
from repro.httpkit import Request
from repro.measure.instrumentation import Event, EventLog
from repro.netsim import Network, StaticServer
from repro.vantage import VANTAGE_POINTS
from repro.webgen import BannerKind
from repro.webgen.crux import export_all, export_toplist, import_toplist


def page_for(html, extra_hosts=()):
    net = Network()
    net.register("site.de", StaticServer(html))
    for host, server in extra_hosts:
        net.register(host, server)
    browser = Browser(net, VANTAGE_POINTS["DE"])
    return browser, browser.visit("site.de")


BANNER_MAIN = (
    '<div class="cookie-banner"><p>Wir verwenden Cookies.</p>'
    '<button data-action="accept" data-cookie="cmp_consent">'
    "Alle akzeptieren</button></div>"
)

BANNER_IFRAME = (
    '<iframe data-banner="1" srcdoc="&lt;div class=cookie-banner&gt;'
    "&lt;p&gt;Wir verwenden Cookies.&lt;/p&gt;"
    "&lt;button data-action=accept&gt;Alle akzeptieren&lt;/button&gt;"
    '&lt;/div&gt;"></iframe>'
)


class TestPrivAcceptBaseline:
    def test_finds_main_dom_accept(self):
        browser, page = page_for(BANNER_MAIN)
        result = PrivAccept().run(browser, page)
        assert result.accept_found and result.clicked
        assert browser.jar.has("cmp_consent", "site.de")

    def test_misses_iframe_banner(self):
        browser, page = page_for(BANNER_IFRAME)
        result = PrivAccept().run(browser, page)
        assert not result.accept_found
        # ... which BannerClick finds.
        assert BannerClick().detect(page).found

    def test_misses_shadow_banner(self):
        html = (
            '<div><template shadowrootmode="open">'
            '<div class="cookie-banner"><p>Cookies!</p>'
            '<button data-action="accept">Accept all</button></div>'
            "</template></div>"
        )
        browser, page = page_for(html)
        assert not PrivAccept().run(browser, page).accept_found
        assert BannerClick().detect(page).found

    def test_no_click_mode(self):
        browser, page = page_for(BANNER_MAIN)
        result = PrivAccept(click=False).run(browser, page)
        assert result.accept_found and not result.clicked
        assert not browser.jar.has("cmp_consent", "site.de")

    def test_compare_detection_on_world(self, medium_world):
        walls = sorted(medium_world.wall_domains)
        detector = BannerClick()
        stats = compare_detection(
            lambda: medium_world.browser("DE"), walls, detector
        )
        assert stats["total"] == len(walls)
        assert stats["bannerclick_found"] == len(walls)
        assert stats["walls_flagged_by_bannerclick"] == len(walls)
        # The baseline misses every iframe/shadow wall.
        main_walls = sum(
            1 for d in walls
            if medium_world.sites[d].wall.placement == "main"
        )
        assert stats["priv_accept_found"] <= main_walls
        assert stats["bannerclick_only"] >= len(walls) - main_walls


class TestInstrumentation:
    def test_event_log_records_navigation_and_requests(self):
        net = Network()
        net.register(
            "site.de",
            StaticServer(
                '<img src="https://tracker.net/p.gif">',
                set_cookies=["sid=1"],
            ),
        )
        net.register("tracker.net", StaticServer("x"))
        log = EventLog()
        browser = Browser(net, VANTAGE_POINTS["DE"], instruments=[log])
        browser.visit("site.de")
        assert len(log.by_kind("navigation")) == 1
        assert len(log.by_kind("request")) == 2
        assert len(log.by_kind("response")) == 2
        assert log.cookie_names_set() == ["sid"]
        assert len(log.third_party_requests()) == 1

    def test_blocked_and_failed_events(self):
        from repro.adblock import UBlockOrigin

        net = Network()
        net.register(
            "site.de",
            StaticServer(
                '<img src="https://doubleclick.net/p.gif">'
                '<img src="https://gone.zz/p.gif">'
            ),
        )
        log = EventLog()
        browser = Browser(
            net, VANTAGE_POINTS["DE"],
            extensions=[UBlockOrigin()], instruments=[log],
        )
        browser.visit("site.de")
        assert len(log.by_kind("blocked")) == 1
        assert len(log.by_kind("failed")) == 1

    def test_visits_are_separated(self):
        net = Network()
        net.register("site.de", StaticServer("<p>x</p>"))
        log = EventLog()
        browser = Browser(net, VANTAGE_POINTS["DE"], instruments=[log])
        browser.visit("site.de")
        browser.visit("site.de")
        assert len(log.visits()) == 2
        first = log.visits()[0]
        assert all(e.visit_id == first for e in log.for_visit(first))

    def test_save_load_round_trip(self, tmp_path):
        log = EventLog()
        log.events.append(Event("navigation", 1, "https://a.de/"))
        log.events.append(
            Event("request", 1, "https://b.net/x", {"third_party": True})
        )
        path = tmp_path / "events.jsonl"
        assert log.save(path) == 2
        loaded = EventLog.load(path)
        assert len(loaded) == 2
        assert loaded.events[1].detail["third_party"] is True

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EventLog().by_kind("telepathy")

    def test_clear(self):
        log = EventLog()
        log.events.append(Event("navigation", 1, "https://a.de/"))
        log.clear()
        assert len(log) == 0


class TestBotDetection:
    def test_bot_sensitive_sites_exist(self, medium_world):
        assert any(s.bot_sensitive for s in medium_world.sites.values())

    def test_stealth_browser_passes(self, medium_world):
        domain = next(
            d for d, s in medium_world.sites.items()
            if s.bot_sensitive and s.reachable
        )
        page = medium_world.browser("DE", stealth=True).visit(domain)
        assert page.status == 200

    def test_naive_crawler_gets_challenge(self, medium_world):
        domain = next(
            d for d, s in medium_world.sites.items()
            if s.bot_sensitive and s.reachable
        )
        page = medium_world.browser("DE", stealth=False).visit(domain)
        assert page.status == 403
        assert "verify" in page.visible_text().lower()

    def test_bot_sensitive_wall_hidden_from_naive_crawler(self, medium_world):
        wall = next(
            (d for d in medium_world.wall_domains
             if medium_world.sites[d].bot_sensitive),
            None,
        )
        if wall is None:
            pytest.skip("no bot-sensitive wall at this scale")
        page = medium_world.browser("DE", stealth=False).visit(wall)
        assert not BannerClick().detect(page).is_cookiewall


class TestRejectMeasurement:
    def test_reject_suppresses_tracking(self, medium_world, medium_crawler):
        domain = next(
            d for d in medium_world.crawl_targets
            if medium_world.sites[d].banner is BannerKind.REGULAR
            and medium_world.sites[d].reject_button
            and medium_world.sites[d].ad_partners
        )
        rejected = medium_crawler.measure_reject_cookies("DE", domain, repeats=3)
        accepted = medium_crawler.measure_accept_cookies("DE", domain, repeats=3)
        assert rejected.avg_tracking == 0.0
        assert accepted.avg_third_party > rejected.avg_third_party

    def test_reject_on_wall_errors(self, medium_world, medium_crawler):
        domain = sorted(medium_world.wall_domains)[0]
        measurement = medium_crawler.measure_reject_cookies(
            "DE", domain, repeats=2
        )
        assert measurement.error == "MeasurementError"


class TestCruxExport:
    def test_round_trip(self, small_world, tmp_path):
        toplist = small_world.toplists["DE"]
        path = tmp_path / "crux_de.csv"
        rows = export_toplist(toplist, path)
        assert rows == len(toplist)
        loaded = import_toplist(path)
        assert loaded.country == "DE"
        assert loaded.domains() == toplist.domains()
        assert loaded.top_bucket == toplist.top_bucket
        for domain in toplist.domains("top1k"):
            assert loaded.bucket_of(domain) == "top1k"

    def test_export_all(self, small_world, tmp_path):
        paths = export_all(small_world.toplists, tmp_path)
        assert len(paths) == 7
        assert all(p.exists() for p in paths)

    def test_import_rejects_garbage(self, tmp_path):
        from repro.errors import ParseError

        bad = tmp_path / "bad.csv"
        bad.write_text("not,a,toplist\n")
        with pytest.raises(ParseError):
            import_toplist(bad)


class TestAdblockLogger:
    def test_hit_counts(self):
        engine = FilterEngine()
        engine.add_list(easylist())
        request = Request(
            url="https://doubleclick.net/x.js",
            initiator="https://site.de/",
            resource_type="script",
        )
        assert engine.should_block(request)
        assert engine.should_block(request)
        top = engine.top_filters(limit=1)
        assert top[0][0] == "||doubleclick.net^"
        assert top[0][1] == 2

    def test_explain(self):
        engine = FilterEngine()
        engine.add_list("||blocked.net^")
        hit = Request(url="https://blocked.net/a", initiator="https://s.de/",
                      resource_type="script")
        miss = Request(url="https://fine.net/a", initiator="https://s.de/",
                       resource_type="script")
        assert engine.explain(hit) == "||blocked.net^"
        assert engine.explain(miss) is None


class TestAsciiRender:
    def test_boxplot_contains_all_labels(self):
        text = ascii_boxplot({"a": [1, 2, 3, 4, 5], "b": [10, 20, 30]})
        assert "a" in text and "b" in text and "#" in text

    def test_boxplot_log_scale(self):
        text = ascii_boxplot({"x": [1, 10, 100]}, log_scale=True)
        assert "log scale" in text

    def test_boxplot_empty_raises(self):
        with pytest.raises(AnalysisError):
            ascii_boxplot({})

    def test_scatter_renders_points(self):
        text = ascii_scatter([(1, 1), (2, 2), (3, 3)], x_label="t", y_label="p")
        assert "o" in text
        assert "t (" in text and "p (" in text

    def test_scatter_empty_raises(self):
        with pytest.raises(AnalysisError):
            ascii_scatter([])

    def test_scatter_overlap_marks(self):
        text = ascii_scatter([(1, 1)] * 5 + [(2, 2)])
        assert "@" in text or "O" in text

    def test_heatmap(self):
        text = ascii_heatmap({"de": {3: 155, 2: 23}, "it": {1: 3}})
        assert "de" in text and "155" in text

    def test_heatmap_empty_raises(self):
        with pytest.raises(AnalysisError):
            ascii_heatmap({})

    def test_comparison_distribution_render(self):
        from repro.analysis.figures import compute_fig4
        from repro.measure.records import CookieMeasurement

        groups = [
            CookieMeasurement(vp="DE", domain=f"x{i}.de", mode="accept",
                              avg_first_party=10 + i, avg_third_party=5,
                              avg_tracking=i)
            for i in range(6)
        ]
        comparison = compute_fig4(groups[:3], groups[3:])
        text = comparison.render_distribution()
        assert "tracking cookies" in text
        assert "log scale" in text

    def test_fig6_scatter_render(self):
        from repro.analysis.figures import Figure6

        figure = Figure6(points=[(10, 2.99), (50, 3.99), (100, 1.99)])
        text = figure.render_scatter()
        assert "Pearson" in text and "o" in text
