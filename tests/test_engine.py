"""Tests for the sharded crawl engine (plan → shard → execute → merge)."""

import random

import pytest

from repro.errors import NetworkError
from repro.experiments import ExperimentContext
from repro.measure import (
    CheckpointMismatch,
    Crawler,
    CrawlEngine,
    CrawlPlan,
    CrawlTask,
    FaultInjectingExecutor,
    RetryPolicy,
    iter_records,
    plan_fingerprint,
)
from repro.measure.crawl import CrawlResult
from repro.measure.engine import shard_of
from repro.measure.instrumentation import EventLog
from repro.webgen import build_world


class TestPlanCompilation:
    def test_detection_plan_is_vp_major(self, medium_world, medium_crawler):
        targets = medium_world.crawl_targets[:3]
        plan = medium_crawler.plan_detection_crawl(["DE", "USE"], targets)
        assert len(plan) == 6
        assert [t.vp for t in plan.tasks] == ["DE"] * 3 + ["USE"] * 3
        assert all(t.mode == "detect" for t in plan.tasks)

    def test_cookie_plan_modes(self, medium_crawler):
        plan = medium_crawler.plan_cookie_measurements(
            "DE", ["a.de", "b.de"], mode="reject", repeats=3
        )
        assert [(t.mode, t.repeats) for t in plan.tasks] == [("reject", 3)] * 2
        with pytest.raises(ValueError):
            medium_crawler.plan_cookie_measurements("DE", [], mode="ublock")

    def test_subscription_plan_carries_context(self, medium_crawler):
        plan = medium_crawler.plan_subscription_measurements(
            "DE", ["a.de"], "contentpass", "e@x.de", "pw", repeats=2
        )
        assert plan.context["platform"] == "contentpass"
        assert plan.tasks[0].mode == "subscription"

    def test_unknown_task_mode_rejected(self):
        with pytest.raises(ValueError):
            CrawlTask(vp="DE", domain="a.de", mode="teleport")


class TestSharding:
    def test_shard_assignment_is_stable_and_bounded(self):
        for domain in ("example.de", "news.com", "blog.se"):
            first = shard_of(domain, 8)
            assert 0 <= first < 8
            assert all(shard_of(domain, 8) == first for _ in range(3))

    def test_all_vps_of_a_domain_share_a_shard(self, medium_crawler):
        targets = ["one.de", "two.com", "three.se"]
        plan = medium_crawler.plan_detection_crawl(["DE", "SE", "USE"], targets)
        for shard in plan.sharded(4):
            domains = {task.domain for _, task in shard}
            vps = [task.vp for _, task in shard]
            assert len(vps) == 3 * len(domains)

    def test_sharded_preserves_plan_indices(self, medium_crawler):
        plan = medium_crawler.plan_detection_crawl(["DE"], ["a.de", "b.de", "c.de"])
        seen = sorted(
            index for shard in plan.sharded(8) for index, _ in shard
        )
        assert seen == [0, 1, 2]


class TestDeterminism:
    @pytest.mark.parametrize("workers,shards", [(4, None), (1, 8), (4, 8)])
    def test_crawl_all_identical_across_configs(
        self, medium_world, medium_crawler, workers, shards
    ):
        targets = medium_world.crawl_targets[:150]
        vps = ["DE", "SE"]
        baseline = [
            r.to_dict()
            for r in medium_crawler.crawl_all(vps, targets, workers=1).records
        ]
        got = [
            r.to_dict()
            for r in medium_crawler.crawl_all(
                vps, targets, workers=workers, shards=shards
            ).records
        ]
        assert got == baseline

    def test_parallel_measurements_reproducible(self, medium_world, medium_crawler):
        """Parallel cookie measurements are a pure function of the
        world and the plan — identical across reruns and across
        different parallel worker/shard configurations (each task gets
        a private visit-id stream derived from the world seed)."""
        domains = sorted(medium_world.wall_domains)[:4]
        plan = medium_crawler.plan_cookie_measurements(
            "DE", domains, mode="accept", repeats=2
        )
        runs = []
        for workers, shards in [(4, 8), (4, 8), (2, 3)]:
            engine = CrawlEngine(
                medium_crawler, workers=workers, shards=shards
            )
            runs.append([m.to_dict() for m in engine.execute(plan).records])
        assert runs[0] == runs[1] == runs[2]

    def test_context_products_match_pre_refactor_serial_path(self):
        """The engine-routed ExperimentContext reproduces the old ad-hoc
        loops byte-for-byte (same visit-id stream, same records)."""
        vps = ["DE", "USE"]
        repeats = 2

        # Reference: the pre-engine serial harness, hand-rolled.
        ref_world = build_world(scale=0.02, seed=7)
        ref_crawler = Crawler(ref_world)
        ref_records = []
        for vp in vps:
            for domain in ref_world.crawl_targets:
                ref_records.append(ref_crawler.visit(vp, domain))
        ref_crawl = CrawlResult(records=ref_records)
        walls = [
            d for d in ref_crawl.cookiewall_domains()
            if d in ref_world.wall_domains
        ]
        ref_wall_ms = [
            ref_crawler.measure_accept_cookies("DE", d, repeats=repeats)
            for d in walls
        ]
        pool = ref_crawl.regular_banner_domains("DE")
        rng = random.Random(1234)
        sample = rng.sample(pool, min(len(walls), len(pool)))
        ref_regular_ms = [
            ref_crawler.measure_accept_cookies("DE", d, repeats=repeats)
            for d in sample
        ]
        ref_ublock = [
            ref_crawler.measure_ublock("DE", d, iterations=repeats)
            for d in walls
        ]

        # Engine path: a fresh identical world through ExperimentContext.
        ctx = ExperimentContext(
            build_world(scale=0.02, seed=7), repeats=repeats, vps=vps
        )
        assert [r.to_dict() for r in ctx.detection_crawl().records] == [
            r.to_dict() for r in ref_records
        ]
        assert [m.to_dict() for m in ctx.wall_measurements()] == [
            m.to_dict() for m in ref_wall_ms
        ]
        assert [m.to_dict() for m in ctx.regular_measurements()] == [
            m.to_dict() for m in ref_regular_ms
        ]
        assert [r.to_dict() for r in ctx.ublock_records()] == [
            r.to_dict() for r in ref_ublock
        ]


class TestRetryPolicy:
    class FlakyCrawler(Crawler):
        def __init__(self, world, fail_times):
            super().__init__(world)
            self.fail_times = fail_times
            self.calls = {}

        def run_task(self, task, context=None, *, visit_ids=None):
            seen = self.calls.get(task.domain, 0)
            self.calls[task.domain] = seen + 1
            if seen < self.fail_times:
                raise NetworkError("flaky backbone")
            return super().run_task(task, context, visit_ids=visit_ids)

    def test_transient_failure_retried(self, medium_world):
        crawler = self.FlakyCrawler(medium_world, fail_times=1)
        log = EventLog()
        engine = CrawlEngine(
            crawler, retry=RetryPolicy(max_attempts=3), event_log=log
        )
        plan = crawler.plan_detection_crawl(
            ["DE"], medium_world.crawl_targets[:2]
        )
        result = engine.execute(plan)
        assert not result.failures
        assert all(o.attempts == 2 for o in result.outcomes)
        assert len(log.by_kind("task-retry")) == 2

    def test_exhausted_retries_recorded_not_raised(self, medium_world):
        crawler = self.FlakyCrawler(medium_world, fail_times=10)
        engine = CrawlEngine(crawler, retry=RetryPolicy(max_attempts=2))
        plan = crawler.plan_detection_crawl(
            ["DE"], medium_world.crawl_targets[:2]
        )
        result = engine.execute(plan)
        assert len(result.failures) == 2
        assert all(o.error == "NetworkError" for o in result.failures)
        # Exhausted tasks degrade instead of vanishing: every plan
        # index still yields a (partial, flagged) record in the merge.
        assert len(result.records) == 2
        for record in result.records:
            assert record.flags.get("degraded") is True
            assert record.error == "NetworkError"
            assert not record.reachable

    def test_retry_unreachable_detection_visits(self, medium_world):
        dead = next(
            d for d, s in medium_world.sites.items() if not s.reachable
        )
        crawler = Crawler(medium_world)
        log = EventLog()
        engine = CrawlEngine(
            crawler,
            retry=RetryPolicy(max_attempts=3, retry_unreachable=True),
            event_log=log,
        )
        result = engine.execute(crawler.plan_detection_crawl(["DE"], [dead]))
        (outcome,) = result.outcomes
        # Permanently dead site: retried to exhaustion, record kept.
        assert outcome.attempts == 3
        assert outcome.record is not None and not outcome.record.reachable
        assert len(log.by_kind("task-retry")) == 2

    def test_unreachable_not_retried_by_default(self, medium_world, medium_crawler):
        dead = next(
            d for d, s in medium_world.sites.items() if not s.reachable
        )
        engine = CrawlEngine(medium_crawler)
        result = engine.execute(
            medium_crawler.plan_detection_crawl(["DE"], [dead])
        )
        assert result.outcomes[0].attempts == 1


class TestEngineEvents:
    def test_event_stream(self, medium_world, medium_crawler):
        log = EventLog()
        engine = CrawlEngine(
            medium_crawler, workers=2, shards=4, event_log=log,
            progress_every=10,
        )
        plan = medium_crawler.plan_detection_crawl(
            ["DE"], medium_world.crawl_targets[:30]
        )
        engine.execute(plan)
        (plan_event,) = log.by_kind("plan")
        assert plan_event.detail == {
            "tasks": 30, "shards": 4, "workers": 2,
            "backend": "thread", "merge": "memory",
        }
        occupied = sum(1 for shard in plan.sharded(4) if shard)
        assert len(log.by_kind("shard")) == occupied
        progress = log.by_kind("progress")
        assert progress[-1].detail == {"done": 30, "total": 30}
        (throughput,) = log.by_kind("throughput")
        assert throughput.detail["tasks"] == 30
        assert throughput.detail["tasks_per_sec"] > 0


class TestSpool:
    def test_spool_finalised_in_plan_order(self, tmp_path, medium_world, medium_crawler):
        spool = tmp_path / "spool" / "records.jsonl"
        engine = CrawlEngine(
            medium_crawler, workers=2, shards=4, spool_path=spool
        )
        targets = medium_world.crawl_targets[:40]
        plan = medium_crawler.plan_detection_crawl(["DE"], targets)
        result = engine.execute(plan)
        spooled = list(iter_records(spool))
        assert len(spooled) == len(result.records) == 40
        assert [r.to_dict() for r in spooled] == [
            r.to_dict() for r in result.records
        ]

    def test_spool_byte_identical_across_runs(self, tmp_path, medium_world, medium_crawler):
        targets = medium_world.crawl_targets[:30]
        plan = medium_crawler.plan_detection_crawl(["DE"], targets)
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            CrawlEngine(
                medium_crawler, workers=4, shards=8, spool_path=path
            ).execute(plan)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_spool_partial_removed_on_success(self, tmp_path, medium_world, medium_crawler):
        spool = tmp_path / "out.jsonl"
        engine = CrawlEngine(medium_crawler, spool_path=spool)
        plan = medium_crawler.plan_detection_crawl(
            ["DE"], medium_world.crawl_targets[:5]
        )
        engine.execute(plan)
        assert spool.exists()
        assert not (tmp_path / "out.jsonl.partial").exists()

    def test_failed_run_preserves_previous_output(self, tmp_path, medium_world):
        class ExplodingCrawler(Crawler):
            def run_task(self, task, context=None, *, visit_ids=None):
                raise RuntimeError("boom")

        spool = tmp_path / "out.jsonl"
        spool.write_text("previous complete output\n")
        crawler = ExplodingCrawler(medium_world)
        engine = CrawlEngine(crawler, spool_path=spool)
        plan = crawler.plan_detection_crawl(
            ["DE"], medium_world.crawl_targets[:2]
        )
        with pytest.raises(RuntimeError):
            engine.execute(plan)
        assert spool.read_text() == "previous complete output\n"

    def test_spool_truncated_between_runs(self, tmp_path, medium_world, medium_crawler):
        spool = tmp_path / "records.jsonl"
        engine = CrawlEngine(medium_crawler, spool_path=spool)
        plan = medium_crawler.plan_detection_crawl(
            ["DE"], medium_world.crawl_targets[:5]
        )
        engine.execute(plan)
        engine.execute(plan)
        assert len(list(iter_records(spool))) == 5


class TestSpoolMerge:
    """The streaming k-way merge (``merge='spool'``)."""

    def test_requires_spool_path(self, medium_crawler):
        with pytest.raises(ValueError, match="spool_path"):
            CrawlEngine(medium_crawler, merge="spool")

    def test_unknown_merge_mode_rejected(self, medium_crawler):
        with pytest.raises(ValueError, match="unknown merge mode"):
            CrawlEngine(medium_crawler, merge="teleport", spool_path="x")

    def test_streamed_result_and_bytes_match_memory(
        self, tmp_path, medium_world, medium_crawler
    ):
        targets = medium_world.crawl_targets[:40]
        plan = medium_crawler.plan_detection_crawl(["DE"], targets)
        memory = tmp_path / "memory.jsonl"
        CrawlEngine(
            medium_crawler, workers=2, shards=4, spool_path=memory
        ).execute(plan)
        streamed = tmp_path / "streamed.jsonl"
        result = CrawlEngine(
            medium_crawler, workers=2, shards=4, spool_path=streamed,
            merge="spool",
        ).execute(plan)
        assert streamed.read_bytes() == memory.read_bytes()
        assert result.streamed and result.outcomes is None
        assert len(result) == 40
        assert result.record_count == 40
        assert result.failures == []
        # Lazy access still works, in plan order.
        assert [r.to_dict() for r in result.iter_records()] == [
            r.to_dict() for r in result.records
        ]
        # No part files (or legacy .partial) left behind.
        leftovers = [
            p.name for p in tmp_path.iterdir()
            if p.name not in ("memory.jsonl", "streamed.jsonl")
        ]
        assert leftovers == []

    def test_failures_kept_in_memory_not_in_spool(
        self, tmp_path, medium_world
    ):
        class DeadCrawler(Crawler):
            def run_task(self, task, context=None, *, visit_ids=None):
                if shard_of(task.domain, 3) == 0:
                    raise NetworkError("dead uplink")
                return super().run_task(task, context, visit_ids=visit_ids)

        crawler = DeadCrawler(medium_world)
        targets = medium_world.crawl_targets[:30]
        dead = [d for d in targets if shard_of(d, 3) == 0]
        assert dead, "sample has no failing domains"
        plan = crawler.plan_detection_crawl(["DE"], targets)
        out = tmp_path / "partial-failures.jsonl"
        result = CrawlEngine(
            crawler, workers=2, shards=4, spool_path=out, merge="spool",
            retry=RetryPolicy(max_attempts=1),
        ).execute(plan)
        assert len(result.failures) == len(dead)
        assert [o.task.domain for o in result.failures] == dead
        assert all(o.error == "NetworkError" for o in result.failures)
        # Failed tasks degrade to partial records, so the spool holds
        # one record per plan index — the failure list is the in-memory
        # side channel, not the only trace of the task.
        assert result.record_count == len(targets)
        spooled = list(iter_records(out))
        assert len(spooled) == len(targets)
        degraded = [r for r in spooled if r.flags.get("degraded")]
        assert sorted(r.domain for r in degraded) == sorted(dead)

    def test_stale_parts_from_crashed_run_are_ignored(
        self, tmp_path, medium_world, medium_crawler
    ):
        """Part files orphaned by a crash must not leak into the next
        run's k-way join."""
        targets = medium_world.crawl_targets[:20]
        plan = medium_crawler.plan_detection_crawl(["DE"], targets)
        out = tmp_path / "out.jsonl"
        stale = tmp_path / "out.jsonl.shard0099.part"
        stale.write_text('{"kind": "outcome", "index": 0, "record": null}\n')
        result = CrawlEngine(
            medium_crawler, workers=2, shards=4, spool_path=out,
            merge="spool",
        ).execute(plan)
        assert result.record_count == 20
        assert not stale.exists()

    def test_backend_validation(self, medium_crawler):
        with pytest.raises(ValueError, match="unknown executor backend"):
            CrawlEngine(medium_crawler, backend="fiber")
        with pytest.raises(ValueError, match="contradicts workers"):
            CrawlEngine(medium_crawler, backend="serial", workers=2)


class TestProgressReporting:
    def test_final_partial_batch_reports(self, medium_world, medium_crawler):
        calls = []
        medium_crawler.crawl_vp(
            "DE", medium_world.crawl_targets[:37],
            progress=lambda done, total: calls.append((done, total)),
        )
        # A short crawl used to never fire (only every 1000th site did).
        assert calls == [(37, 37)]

    def test_batches_and_final_report(self, monkeypatch, medium_world, medium_crawler):
        import repro.measure.crawl as crawl_mod

        monkeypatch.setattr(crawl_mod, "PROGRESS_BATCH", 10)
        calls = []
        medium_crawler.crawl_vp(
            "DE", medium_world.crawl_targets[:25],
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(10, 25), (20, 25), (25, 25)]

    def test_crawl_all_reports_per_vp(self, monkeypatch, medium_world, medium_crawler):
        import repro.measure.crawl as crawl_mod

        monkeypatch.setattr(crawl_mod, "PROGRESS_BATCH", 10)
        calls = []
        medium_crawler.crawl_all(
            ["DE", "USE"], medium_world.crawl_targets[:15],
            progress=lambda vp, done, total: calls.append((vp, done, total)),
        )
        assert calls == [
            ("DE", 10, 15), ("DE", 15, 15), ("USE", 10, 15), ("USE", 15, 15),
        ]


class TestCheckpointResume:
    WORKERS, SHARDS = 4, 8

    def _targets(self, world, count=60):
        return world.crawl_targets[:count]

    def _crash(self, crawler, plan, out, *, partial=False,
               fail_shards=(1, 3, 5)):
        """Run *plan* under fault injection; returns the engine."""
        engine = CrawlEngine(
            crawler, workers=self.WORKERS, shards=self.SHARDS,
            spool_path=out, checkpoint_path=f"{out}.checkpoint",
            executor=FaultInjectingExecutor(
                self.WORKERS, fail_shards, partial=partial
            ),
        )
        with pytest.raises(RuntimeError, match="injected crash"):
            engine.execute(plan)
        return engine

    def test_killed_parallel_run_resumes_byte_identical_to_serial(
        self, tmp_path, medium_world, medium_crawler
    ):
        """The acceptance criterion: a workers=4/shards=8 run killed
        mid-execution and resumed produces a final JSONL byte-identical
        to an uninterrupted clean serial run."""
        targets = self._targets(medium_world)
        plan = medium_crawler.plan_detection_crawl(["DE"], targets)

        reference = tmp_path / "serial.jsonl"
        CrawlEngine(medium_crawler, spool_path=reference).execute(plan)

        out = tmp_path / "parallel.jsonl"
        checkpoint = tmp_path / "parallel.jsonl.checkpoint"
        self._crash(medium_crawler, plan, out)
        assert checkpoint.exists()
        assert not out.exists()  # the final file is never half-written

        log = EventLog()
        engine = CrawlEngine(
            medium_crawler, workers=self.WORKERS, shards=self.SHARDS,
            spool_path=out, checkpoint_path=checkpoint, resume=True,
            event_log=log,
        )
        result = engine.execute(plan)
        assert result.resumed > 0
        survivors = {
            d for d in targets
            if shard_of(d, self.SHARDS) not in (1, 3, 5)
        }
        assert result.resumed == len(survivors)
        assert out.read_bytes() == reference.read_bytes()
        assert not checkpoint.exists()  # consumed on success
        (resume_event,) = log.by_kind("resume")
        assert resume_event.detail == {
            "completed": result.resumed,
            "remaining": len(targets) - result.resumed,
        }

    def test_mid_shard_kill_loses_only_unfinished_tail(
        self, tmp_path, medium_world, medium_crawler
    ):
        """A shard killed halfway keeps its checkpointed first half;
        resume re-runs only the tail and the merge is still identical."""
        targets = self._targets(medium_world)
        plan = medium_crawler.plan_detection_crawl(["DE"], targets)
        reference = tmp_path / "serial.jsonl"
        CrawlEngine(medium_crawler, spool_path=reference).execute(plan)

        out = tmp_path / "resumed.jsonl"
        self._crash(medium_crawler, plan, out, partial=True)
        result = CrawlEngine(
            medium_crawler, workers=self.WORKERS, shards=self.SHARDS,
            spool_path=out, checkpoint_path=f"{out}.checkpoint", resume=True,
        ).execute(plan)
        # More than just the untouched shards were replayed: the killed
        # shards' first halves survived in the checkpoint too.
        untouched = sum(
            1 for d in targets if shard_of(d, self.SHARDS) not in (1, 3, 5)
        )
        assert result.resumed > untouched
        assert out.read_bytes() == reference.read_bytes()

    def test_parallel_cookie_measurements_resume_identically(
        self, tmp_path, medium_world, medium_crawler
    ):
        """Visit-id-consuming measurements also survive a crash: the
        per-task id streams make the resumed run byte-identical to the
        uninterrupted checkpointed run."""
        domains = sorted(medium_world.wall_domains)[:8]
        plan = medium_crawler.plan_cookie_measurements(
            "DE", domains, mode="accept", repeats=2
        )
        reference = tmp_path / "uninterrupted.jsonl"
        CrawlEngine(
            medium_crawler, workers=self.WORKERS, shards=self.SHARDS,
            spool_path=reference,
            checkpoint_path=f"{reference}.checkpoint",
        ).execute(plan)

        out = tmp_path / "resumed.jsonl"
        self._crash(medium_crawler, plan, out, fail_shards=(0, 2))
        result = CrawlEngine(
            medium_crawler, workers=self.WORKERS, shards=self.SHARDS,
            spool_path=out, checkpoint_path=f"{out}.checkpoint", resume=True,
        ).execute(plan)
        assert len(result.records) == len(domains)
        assert out.read_bytes() == reference.read_bytes()

    def test_serial_checkpointed_run_matches_parallel(
        self, tmp_path, medium_world, medium_crawler
    ):
        """Checkpointing forces per-task id streams even when serial,
        so a serial checkpointed spool equals the parallel one."""
        domains = sorted(medium_world.wall_domains)[:4]
        plan = medium_crawler.plan_cookie_measurements(
            "DE", domains, mode="accept", repeats=2
        )
        serial = tmp_path / "serial.jsonl"
        parallel = tmp_path / "parallel.jsonl"
        CrawlEngine(
            medium_crawler, spool_path=serial,
            checkpoint_path=f"{serial}.checkpoint",
        ).execute(plan)
        CrawlEngine(
            medium_crawler, workers=4, shards=8, spool_path=parallel,
            checkpoint_path=f"{parallel}.checkpoint",
        ).execute(plan)
        assert serial.read_bytes() == parallel.read_bytes()

    def test_fingerprint_mismatch_refused(
        self, tmp_path, medium_world, medium_crawler
    ):
        targets = self._targets(medium_world, 40)
        plan = medium_crawler.plan_detection_crawl(["DE"], targets)
        out = tmp_path / "out.jsonl"
        self._crash(medium_crawler, plan, out)

        # A different plan (fewer targets) must be refused...
        other = medium_crawler.plan_detection_crawl(["DE"], targets[:10])
        engine = CrawlEngine(
            medium_crawler, workers=self.WORKERS, shards=self.SHARDS,
            checkpoint_path=f"{out}.checkpoint", resume=True,
        )
        with pytest.raises(CheckpointMismatch, match="refusing to resume"):
            engine.execute(other)
        # ...and so must the same plan against a different world seed.
        other_crawler = Crawler(build_world(scale=0.05, seed=8))
        engine = CrawlEngine(
            other_crawler, workers=self.WORKERS, shards=self.SHARDS,
            checkpoint_path=f"{out}.checkpoint", resume=True,
        )
        with pytest.raises(CheckpointMismatch):
            engine.execute(plan)

    def test_resume_without_checkpoint_starts_fresh(
        self, tmp_path, medium_world, medium_crawler
    ):
        plan = medium_crawler.plan_detection_crawl(
            ["DE"], self._targets(medium_world, 10)
        )
        out = tmp_path / "fresh.jsonl"
        result = CrawlEngine(
            medium_crawler, spool_path=out,
            checkpoint_path=f"{out}.checkpoint", resume=True,
        ).execute(plan)
        assert result.resumed == 0
        assert len(result.records) == 10

    def test_torn_checkpoint_line_reruns_that_task(
        self, tmp_path, medium_world, medium_crawler
    ):
        """A writer killed mid-append leaves a torn outcome line; the
        resume replays every complete line and re-runs the torn one."""
        targets = self._targets(medium_world, 20)
        plan = medium_crawler.plan_detection_crawl(["DE"], targets)
        out = tmp_path / "torn.jsonl"
        checkpoint = tmp_path / "torn.jsonl.checkpoint"
        self._crash(medium_crawler, plan, out)
        whole = checkpoint.read_text(encoding="utf-8")
        lines = whole.splitlines(keepends=True)
        complete_outcomes = len(lines) - 1  # minus the header
        checkpoint.write_text(
            "".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2],
            encoding="utf-8",
        )
        with pytest.warns(UserWarning, match="torn trailing line"):
            result = CrawlEngine(
                medium_crawler, workers=self.WORKERS, shards=self.SHARDS,
                spool_path=out, checkpoint_path=checkpoint, resume=True,
            ).execute(plan)
        assert result.resumed == complete_outcomes - 1
        reference = tmp_path / "serial.jsonl"
        CrawlEngine(medium_crawler, spool_path=reference).execute(plan)
        assert out.read_bytes() == reference.read_bytes()

    def test_failed_outcomes_are_checkpointed_and_replayed(self, tmp_path):
        """Permanent failures are part of the checkpoint too: a resume
        must not re-run tasks that already failed their retries."""
        world = build_world(scale=0.02, seed=7)

        class DeadCrawler(Crawler):
            def __init__(self, inner_world):
                super().__init__(inner_world)
                self.calls = 0

            def run_task(self, task, context=None, *, visit_ids=None):
                self.calls += 1
                raise NetworkError("永 unreachable")

        crawler = DeadCrawler(world)
        # Three domains per shard, so both the surviving and the killed
        # shard are non-empty whatever the world's domain names hash to.
        targets = [
            d for d in world.crawl_targets if shard_of(d, 2) == 0
        ][:3] + [
            d for d in world.crawl_targets if shard_of(d, 2) == 1
        ][:3]
        plan = crawler.plan_detection_crawl(["DE"], targets)
        checkpoint = tmp_path / "dead.checkpoint"
        # Shard 1 is killed before running; shard 0's tasks all *fail*
        # (NetworkError, retries exhausted) and checkpoint as failures.
        engine = CrawlEngine(
            crawler, retry=RetryPolicy(max_attempts=1),
            checkpoint_path=checkpoint,
            executor=FaultInjectingExecutor(2, (1,)),
            workers=2, shards=2,
        )
        with pytest.raises(RuntimeError, match="injected crash"):
            engine.execute(plan)
        shard0 = sum(1 for d in targets if shard_of(d, 2) == 0)
        assert crawler.calls == shard0
        calls_before = crawler.calls

        resumed = CrawlEngine(
            crawler, retry=RetryPolicy(max_attempts=1),
            checkpoint_path=checkpoint, resume=True, workers=2, shards=2,
        ).execute(plan)
        # Only the killed shard re-ran; the failed outcomes replayed.
        assert crawler.calls == calls_before + (len(targets) - shard0)
        assert resumed.resumed == shard0
        assert [o.error for o in resumed.outcomes] == [
            "NetworkError"
        ] * len(targets)

    def test_plan_fingerprint_stability(self, medium_crawler):
        plan = medium_crawler.plan_cookie_measurements(
            "DE", ["a.de", "b.de"], mode="accept", repeats=2
        )
        base = plan_fingerprint(plan, world_seed=7)
        assert plan_fingerprint(plan, world_seed=7) == base
        assert plan_fingerprint(plan, world_seed=8) != base
        assert plan_fingerprint(plan, world_seed=7, per_task_ids=False) != base
        assert plan_fingerprint(plan, world_seed=7, world_evolution=4) != base
        reordered = CrawlPlan(tasks=list(reversed(plan.tasks)))
        assert plan_fingerprint(reordered, world_seed=7) != base

    def test_evolved_world_cannot_resume_baseline_checkpoint(
        self, tmp_path, medium_world, medium_crawler
    ):
        """Two snapshots share a seed but not a web: a checkpoint from
        the baseline must be refused by the evolved world's crawl."""
        from repro.webgen.evolve import evolve_world

        targets = self._targets(medium_world, 40)
        plan = medium_crawler.plan_detection_crawl(["DE"], targets)
        out = tmp_path / "baseline.jsonl"
        self._crash(medium_crawler, plan, out)

        evolved, _ = evolve_world(medium_world, months=4)
        engine = CrawlEngine(
            Crawler(evolved), workers=self.WORKERS, shards=self.SHARDS,
            checkpoint_path=f"{out}.checkpoint", resume=True,
        )
        with pytest.raises(CheckpointMismatch):
            engine.execute(
                Crawler(evolved).plan_detection_crawl(["DE"], targets)
            )

    def test_resume_without_checkpoint_path_rejected(self, medium_crawler):
        with pytest.raises(ValueError, match="requires a checkpoint_path"):
            CrawlEngine(medium_crawler, resume=True)

    def test_corrupt_checkpoint_refused_not_crashed(
        self, tmp_path, medium_world, medium_crawler
    ):
        """Mid-file garbage or malformed outcome lines surface as
        CheckpointMismatch (the CLI's friendly exit), not a traceback."""
        targets = self._targets(medium_world, 20)
        plan = medium_crawler.plan_detection_crawl(["DE"], targets)
        out = tmp_path / "c.jsonl"
        checkpoint = tmp_path / "c.jsonl.checkpoint"
        self._crash(medium_crawler, plan, out)

        lines = checkpoint.read_text(encoding="utf-8").splitlines()
        # Garbage in the middle of the file (not a torn final line).
        checkpoint.write_text(
            "\n".join([lines[0], "{not json", *lines[1:]]) + "\n",
            encoding="utf-8",
        )
        engine = CrawlEngine(
            medium_crawler, checkpoint_path=checkpoint, resume=True,
        )
        with pytest.raises(CheckpointMismatch, match="corrupt checkpoint"):
            engine.execute(plan)

        # An outcome line missing its index is malformed, not fatal.
        self._crash(medium_crawler, plan, out)
        lines = checkpoint.read_text(encoding="utf-8").splitlines()
        checkpoint.write_text(
            "\n".join([lines[0], '{"kind": "outcome"}', *lines[1:]]) + "\n",
            encoding="utf-8",
        )
        with pytest.raises(CheckpointMismatch, match="corrupt checkpoint"):
            CrawlEngine(
                medium_crawler, checkpoint_path=checkpoint, resume=True,
            ).execute(plan)

    def test_throughput_counts_executed_not_replayed(
        self, tmp_path, medium_world, medium_crawler
    ):
        """A 50%-resumed run must not report double the real rate."""
        targets = self._targets(medium_world)
        plan = medium_crawler.plan_detection_crawl(["DE"], targets)
        out = tmp_path / "t.jsonl"
        self._crash(medium_crawler, plan, out)
        log = EventLog()
        result = CrawlEngine(
            medium_crawler, workers=self.WORKERS, shards=self.SHARDS,
            spool_path=out, checkpoint_path=f"{out}.checkpoint",
            resume=True, event_log=log,
        ).execute(plan)
        assert result.executed == len(targets) - result.resumed
        assert result.tasks_per_sec == pytest.approx(
            result.executed / result.elapsed
        )
        (throughput,) = log.by_kind("throughput")
        assert throughput.detail["tasks"] == result.executed
        assert throughput.detail["resumed"] == result.resumed


class TestUBlockErrorTracking:
    def test_unreachable_site_not_reported_suppressed(
        self, medium_world, medium_crawler
    ):
        dead = next(
            d for d, s in medium_world.sites.items() if not s.reachable
        )
        record = medium_crawler.measure_ublock("DE", dead, iterations=2)
        assert record.errors == 2
        assert record.wall_seen_count == 0
        assert not record.suppressed

    def test_reachable_smp_wall_still_suppressed(
        self, medium_world, medium_crawler
    ):
        smp_wall = next(
            d for d in sorted(medium_world.wall_domains)
            if medium_world.sites[d].wall.serving == "smp"
        )
        record = medium_crawler.measure_ublock("DE", smp_wall, iterations=2)
        assert record.errors == 0
        assert record.suppressed


class TestCheckpointCompaction:
    WORKERS, SHARDS = 4, 8

    def _crashed_checkpoint(self, tmp_path, crawler, plan):
        out = tmp_path / "records.jsonl"
        engine = CrawlEngine(
            crawler, workers=self.WORKERS, shards=self.SHARDS,
            spool_path=out, checkpoint_path=f"{out}.checkpoint",
            executor=FaultInjectingExecutor(
                self.WORKERS, (1, 3, 5), partial=True
            ),
        )
        with pytest.raises(RuntimeError, match="injected crash"):
            engine.execute(plan)
        return out, tmp_path / "records.jsonl.checkpoint"

    def test_compacted_checkpoint_resumes_byte_identical(
        self, tmp_path, medium_world, medium_crawler
    ):
        targets = medium_world.crawl_targets[:60]
        plan = medium_crawler.plan_detection_crawl(["DE"], targets)
        reference = tmp_path / "clean.jsonl"
        CrawlEngine(
            medium_crawler, workers=self.WORKERS, shards=self.SHARDS,
            spool_path=reference,
            checkpoint_path=f"{reference}.checkpoint",
        ).execute(plan)

        out, checkpoint = self._crashed_checkpoint(
            tmp_path, medium_crawler, plan
        )
        # Simulate append-only growth: re-append the first outcome line
        # twice (a superseded duplicate, as left by repeated
        # crash/resume cycles before the reconcile rewrite).
        lines = checkpoint.read_text().splitlines()
        header, first_outcome = lines[0], lines[1]
        with checkpoint.open("a") as handle:
            handle.write(first_outcome + "\n")
            handle.write(first_outcome + "\n")

        compaction = CrawlEngine.compact_checkpoint(checkpoint)
        assert compaction.dropped == 2
        assert compaction.kept == len(lines) - 1
        assert "kept" in compaction.render()
        # The header survives verbatim: same fingerprint, still resumable.
        assert checkpoint.read_text().splitlines()[0] == header

        result = CrawlEngine(
            medium_crawler, workers=self.WORKERS, shards=self.SHARDS,
            spool_path=out, checkpoint_path=checkpoint, resume=True,
        ).execute(plan)
        assert result.resumed == compaction.kept
        assert out.read_bytes() == reference.read_bytes()

    def test_compaction_is_idempotent(
        self, tmp_path, medium_world, medium_crawler
    ):
        plan = medium_crawler.plan_detection_crawl(
            ["DE"], medium_world.crawl_targets[:40]
        )
        _, checkpoint = self._crashed_checkpoint(
            tmp_path, medium_crawler, plan
        )
        first = CrawlEngine.compact_checkpoint(checkpoint)
        before = checkpoint.read_bytes()
        second = CrawlEngine.compact_checkpoint(checkpoint)
        assert second.dropped == 0
        assert second.kept == first.kept
        assert checkpoint.read_bytes() == before

    def test_outcomes_sorted_into_plan_order(
        self, tmp_path, medium_world, medium_crawler
    ):
        import json as _json

        plan = medium_crawler.plan_detection_crawl(
            ["DE"], medium_world.crawl_targets[:40]
        )
        _, checkpoint = self._crashed_checkpoint(
            tmp_path, medium_crawler, plan
        )
        CrawlEngine.compact_checkpoint(checkpoint)
        indices = [
            _json.loads(line)["index"]
            for line in checkpoint.read_text().splitlines()[1:]
        ]
        assert indices == sorted(indices)

    def test_refuses_non_checkpoint_files(self, tmp_path):
        not_checkpoint = tmp_path / "records.jsonl"
        not_checkpoint.write_text('{"type": "VisitRecord", "data": {}}\n')
        with pytest.raises(CheckpointMismatch, match="not a crawl checkpoint"):
            CrawlEngine.compact_checkpoint(not_checkpoint)
        empty = tmp_path / "empty.checkpoint"
        empty.write_text("")
        with pytest.raises(CheckpointMismatch, match="not a crawl checkpoint"):
            CrawlEngine.compact_checkpoint(empty)


class TestStreamingReconcileMachinery:
    """The run-scan + k-way merge the resume and compaction share."""

    @staticmethod
    def _outcome(index, attempts=1):
        return (
            '{"kind": "outcome", "index": %d, "attempts": %d, '
            '"error": null, "record": null}' % (index, attempts)
        )

    def _checkpoint(self, tmp_path, lines):
        path = tmp_path / "machinery.checkpoint"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path

    def test_scan_finds_sorted_runs_and_index_set(self, tmp_path):
        from repro.measure.engine import _scan_checkpoint

        path = self._checkpoint(tmp_path, [
            '{"kind": "header", "version": 1, "fingerprint": "f"}',
            self._outcome(0),
            self._outcome(3),
            self._outcome(1),   # index <= prev: a new run starts here
            self._outcome(3, attempts=2),
            self._outcome(5),
        ])
        scan = _scan_checkpoint(path)
        assert len(scan.runs) == 2
        assert scan.indices == {0, 1, 3, 5}
        assert scan.outcome_lines == 5
        assert scan.header["fingerprint"] == "f"

    def test_merge_is_plan_ordered_and_latest_wins(self, tmp_path):
        from repro.measure.engine import (
            _merge_checkpoint_runs,
            _scan_checkpoint,
        )

        path = self._checkpoint(tmp_path, [
            '{"kind": "header", "version": 1, "fingerprint": "f"}',
            self._outcome(0),
            self._outcome(3),
            self._outcome(1),
            self._outcome(3, attempts=2),
            self._outcome(5),
        ])
        merged = list(_merge_checkpoint_runs(path, _scan_checkpoint(path)))
        assert [index for index, _, _ in merged] == [0, 1, 3, 5]
        payloads = {index: payload for index, payload, _ in merged}
        # The later run's outcome supersedes the earlier duplicate.
        assert payloads[3]["attempts"] == 2

    def test_scan_excludes_torn_trailing_line(self, tmp_path):
        from repro.measure.engine import (
            _merge_checkpoint_runs,
            _scan_checkpoint,
        )
        from repro.measure.storage import TornRecordWarning

        path = self._checkpoint(tmp_path, [
            '{"kind": "header", "version": 1, "fingerprint": "f"}',
            self._outcome(0),
            self._outcome(2),
            '{"kind": "outcome", "index": 4, "att',  # torn final write
        ])
        with pytest.warns(TornRecordWarning, match="torn trailing line"):
            scan = _scan_checkpoint(path)
        assert scan.indices == {0, 2}
        merged = list(_merge_checkpoint_runs(path, scan))
        assert [index for index, _, _ in merged] == [0, 2]

    def test_scan_rejects_mid_file_garbage(self, tmp_path):
        from repro.measure.engine import _scan_checkpoint

        path = self._checkpoint(tmp_path, [
            '{"kind": "header", "version": 1, "fingerprint": "f"}',
            "{not json",
            self._outcome(1),
        ])
        with pytest.raises(ValueError, match="invalid JSON mid-file"):
            _scan_checkpoint(path)

    def test_spool_resume_streams_replay_without_holding_outcomes(
        self, tmp_path, medium_world, medium_crawler
    ):
        """The resume path's memory contract: under the spool merge the
        reconcile returns only the completed index set — the replayed
        records stream through the sorted part file."""
        targets = medium_world.crawl_targets[:40]
        plan = medium_crawler.plan_detection_crawl(["DE"], targets)
        out = tmp_path / "streamed.jsonl"
        checkpoint = tmp_path / "streamed.jsonl.checkpoint"
        engine = CrawlEngine(
            medium_crawler, workers=4, shards=8, merge="spool",
            spool_path=out, checkpoint_path=checkpoint,
            executor=FaultInjectingExecutor(4, (1, 4), partial=True),
        )
        with pytest.raises(RuntimeError, match="injected crash"):
            engine.execute(plan)

        resumer = CrawlEngine(
            medium_crawler, workers=4, shards=8, merge="spool",
            spool_path=out, checkpoint_path=checkpoint, resume=True,
        )
        replay = resumer._reconcile_checkpoint(plan)
        assert replay.count > 0
        assert replay.outcomes == []          # never materialised
        assert replay.resume_part is not None  # streamed to disk instead
        replay_lines = replay.resume_part.read_text().splitlines()
        assert len(replay_lines) == replay.count
        # The rewritten checkpoint is canonical: header + plan-ordered
        # unique outcomes, ready for the next append or resume.
        import json as _json

        indices = [
            _json.loads(line)["index"]
            for line in checkpoint.read_text().splitlines()[1:]
        ]
        assert indices == sorted(indices)
        assert len(indices) == len(set(indices)) == replay.count
