"""Tests for the sharded crawl engine (plan → shard → execute → merge)."""

import random

import pytest

from repro.errors import NetworkError
from repro.experiments import ExperimentContext
from repro.measure import (
    Crawler,
    CrawlEngine,
    CrawlPlan,
    CrawlTask,
    RetryPolicy,
    iter_records,
)
from repro.measure.crawl import CrawlResult
from repro.measure.engine import shard_of
from repro.measure.instrumentation import EventLog
from repro.webgen import build_world


class TestPlanCompilation:
    def test_detection_plan_is_vp_major(self, medium_world, medium_crawler):
        targets = medium_world.crawl_targets[:3]
        plan = medium_crawler.plan_detection_crawl(["DE", "USE"], targets)
        assert len(plan) == 6
        assert [t.vp for t in plan.tasks] == ["DE"] * 3 + ["USE"] * 3
        assert all(t.mode == "detect" for t in plan.tasks)

    def test_cookie_plan_modes(self, medium_crawler):
        plan = medium_crawler.plan_cookie_measurements(
            "DE", ["a.de", "b.de"], mode="reject", repeats=3
        )
        assert [(t.mode, t.repeats) for t in plan.tasks] == [("reject", 3)] * 2
        with pytest.raises(ValueError):
            medium_crawler.plan_cookie_measurements("DE", [], mode="ublock")

    def test_subscription_plan_carries_context(self, medium_crawler):
        plan = medium_crawler.plan_subscription_measurements(
            "DE", ["a.de"], "contentpass", "e@x.de", "pw", repeats=2
        )
        assert plan.context["platform"] == "contentpass"
        assert plan.tasks[0].mode == "subscription"

    def test_unknown_task_mode_rejected(self):
        with pytest.raises(ValueError):
            CrawlTask(vp="DE", domain="a.de", mode="teleport")


class TestSharding:
    def test_shard_assignment_is_stable_and_bounded(self):
        for domain in ("example.de", "news.com", "blog.se"):
            first = shard_of(domain, 8)
            assert 0 <= first < 8
            assert all(shard_of(domain, 8) == first for _ in range(3))

    def test_all_vps_of_a_domain_share_a_shard(self, medium_crawler):
        targets = ["one.de", "two.com", "three.se"]
        plan = medium_crawler.plan_detection_crawl(["DE", "SE", "USE"], targets)
        for shard in plan.sharded(4):
            domains = {task.domain for _, task in shard}
            vps = [task.vp for _, task in shard]
            assert len(vps) == 3 * len(domains)

    def test_sharded_preserves_plan_indices(self, medium_crawler):
        plan = medium_crawler.plan_detection_crawl(["DE"], ["a.de", "b.de", "c.de"])
        seen = sorted(
            index for shard in plan.sharded(8) for index, _ in shard
        )
        assert seen == [0, 1, 2]


class TestDeterminism:
    @pytest.mark.parametrize("workers,shards", [(4, None), (1, 8), (4, 8)])
    def test_crawl_all_identical_across_configs(
        self, medium_world, medium_crawler, workers, shards
    ):
        targets = medium_world.crawl_targets[:150]
        vps = ["DE", "SE"]
        baseline = [
            r.to_dict()
            for r in medium_crawler.crawl_all(vps, targets, workers=1).records
        ]
        got = [
            r.to_dict()
            for r in medium_crawler.crawl_all(
                vps, targets, workers=workers, shards=shards
            ).records
        ]
        assert got == baseline

    def test_parallel_measurements_reproducible(self, medium_world, medium_crawler):
        """Parallel cookie measurements are a pure function of the
        world and the plan — identical across reruns and across
        different parallel worker/shard configurations (each task gets
        a private visit-id stream derived from the world seed)."""
        domains = sorted(medium_world.wall_domains)[:4]
        plan = medium_crawler.plan_cookie_measurements(
            "DE", domains, mode="accept", repeats=2
        )
        runs = []
        for workers, shards in [(4, 8), (4, 8), (2, 3)]:
            engine = CrawlEngine(
                medium_crawler, workers=workers, shards=shards
            )
            runs.append([m.to_dict() for m in engine.execute(plan).records])
        assert runs[0] == runs[1] == runs[2]

    def test_context_products_match_pre_refactor_serial_path(self):
        """The engine-routed ExperimentContext reproduces the old ad-hoc
        loops byte-for-byte (same visit-id stream, same records)."""
        vps = ["DE", "USE"]
        repeats = 2

        # Reference: the pre-engine serial harness, hand-rolled.
        ref_world = build_world(scale=0.02, seed=7)
        ref_crawler = Crawler(ref_world)
        ref_records = []
        for vp in vps:
            for domain in ref_world.crawl_targets:
                ref_records.append(ref_crawler.visit(vp, domain))
        ref_crawl = CrawlResult(records=ref_records)
        walls = [
            d for d in ref_crawl.cookiewall_domains()
            if d in ref_world.wall_domains
        ]
        ref_wall_ms = [
            ref_crawler.measure_accept_cookies("DE", d, repeats=repeats)
            for d in walls
        ]
        pool = ref_crawl.regular_banner_domains("DE")
        rng = random.Random(1234)
        sample = rng.sample(pool, min(len(walls), len(pool)))
        ref_regular_ms = [
            ref_crawler.measure_accept_cookies("DE", d, repeats=repeats)
            for d in sample
        ]
        ref_ublock = [
            ref_crawler.measure_ublock("DE", d, iterations=repeats)
            for d in walls
        ]

        # Engine path: a fresh identical world through ExperimentContext.
        ctx = ExperimentContext(
            build_world(scale=0.02, seed=7), repeats=repeats, vps=vps
        )
        assert [r.to_dict() for r in ctx.detection_crawl().records] == [
            r.to_dict() for r in ref_records
        ]
        assert [m.to_dict() for m in ctx.wall_measurements()] == [
            m.to_dict() for m in ref_wall_ms
        ]
        assert [m.to_dict() for m in ctx.regular_measurements()] == [
            m.to_dict() for m in ref_regular_ms
        ]
        assert [r.to_dict() for r in ctx.ublock_records()] == [
            r.to_dict() for r in ref_ublock
        ]


class TestRetryPolicy:
    class FlakyCrawler(Crawler):
        def __init__(self, world, fail_times):
            super().__init__(world)
            self.fail_times = fail_times
            self.calls = {}

        def run_task(self, task, context=None, *, visit_ids=None):
            seen = self.calls.get(task.domain, 0)
            self.calls[task.domain] = seen + 1
            if seen < self.fail_times:
                raise NetworkError("flaky backbone")
            return super().run_task(task, context, visit_ids=visit_ids)

    def test_transient_failure_retried(self, medium_world):
        crawler = self.FlakyCrawler(medium_world, fail_times=1)
        log = EventLog()
        engine = CrawlEngine(
            crawler, retry=RetryPolicy(max_attempts=3), event_log=log
        )
        plan = crawler.plan_detection_crawl(
            ["DE"], medium_world.crawl_targets[:2]
        )
        result = engine.execute(plan)
        assert not result.failures
        assert all(o.attempts == 2 for o in result.outcomes)
        assert len(log.by_kind("task-retry")) == 2

    def test_exhausted_retries_recorded_not_raised(self, medium_world):
        crawler = self.FlakyCrawler(medium_world, fail_times=10)
        engine = CrawlEngine(crawler, retry=RetryPolicy(max_attempts=2))
        plan = crawler.plan_detection_crawl(
            ["DE"], medium_world.crawl_targets[:2]
        )
        result = engine.execute(plan)
        assert len(result.failures) == 2
        assert all(o.error == "NetworkError" for o in result.failures)
        assert result.records == []

    def test_retry_unreachable_detection_visits(self, medium_world):
        dead = next(
            d for d, s in medium_world.sites.items() if not s.reachable
        )
        crawler = Crawler(medium_world)
        log = EventLog()
        engine = CrawlEngine(
            crawler,
            retry=RetryPolicy(max_attempts=3, retry_unreachable=True),
            event_log=log,
        )
        result = engine.execute(crawler.plan_detection_crawl(["DE"], [dead]))
        (outcome,) = result.outcomes
        # Permanently dead site: retried to exhaustion, record kept.
        assert outcome.attempts == 3
        assert outcome.record is not None and not outcome.record.reachable
        assert len(log.by_kind("task-retry")) == 2

    def test_unreachable_not_retried_by_default(self, medium_world, medium_crawler):
        dead = next(
            d for d, s in medium_world.sites.items() if not s.reachable
        )
        engine = CrawlEngine(medium_crawler)
        result = engine.execute(
            medium_crawler.plan_detection_crawl(["DE"], [dead])
        )
        assert result.outcomes[0].attempts == 1


class TestEngineEvents:
    def test_event_stream(self, medium_world, medium_crawler):
        log = EventLog()
        engine = CrawlEngine(
            medium_crawler, workers=2, shards=4, event_log=log,
            progress_every=10,
        )
        plan = medium_crawler.plan_detection_crawl(
            ["DE"], medium_world.crawl_targets[:30]
        )
        engine.execute(plan)
        (plan_event,) = log.by_kind("plan")
        assert plan_event.detail == {"tasks": 30, "shards": 4, "workers": 2}
        occupied = sum(1 for shard in plan.sharded(4) if shard)
        assert len(log.by_kind("shard")) == occupied
        progress = log.by_kind("progress")
        assert progress[-1].detail == {"done": 30, "total": 30}
        (throughput,) = log.by_kind("throughput")
        assert throughput.detail["tasks"] == 30
        assert throughput.detail["tasks_per_sec"] > 0


class TestSpool:
    def test_spool_finalised_in_plan_order(self, tmp_path, medium_world, medium_crawler):
        spool = tmp_path / "spool" / "records.jsonl"
        engine = CrawlEngine(
            medium_crawler, workers=2, shards=4, spool_path=spool
        )
        targets = medium_world.crawl_targets[:40]
        plan = medium_crawler.plan_detection_crawl(["DE"], targets)
        result = engine.execute(plan)
        spooled = list(iter_records(spool))
        assert len(spooled) == len(result.records) == 40
        assert [r.to_dict() for r in spooled] == [
            r.to_dict() for r in result.records
        ]

    def test_spool_byte_identical_across_runs(self, tmp_path, medium_world, medium_crawler):
        targets = medium_world.crawl_targets[:30]
        plan = medium_crawler.plan_detection_crawl(["DE"], targets)
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            CrawlEngine(
                medium_crawler, workers=4, shards=8, spool_path=path
            ).execute(plan)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_spool_partial_removed_on_success(self, tmp_path, medium_world, medium_crawler):
        spool = tmp_path / "out.jsonl"
        engine = CrawlEngine(medium_crawler, spool_path=spool)
        plan = medium_crawler.plan_detection_crawl(
            ["DE"], medium_world.crawl_targets[:5]
        )
        engine.execute(plan)
        assert spool.exists()
        assert not (tmp_path / "out.jsonl.partial").exists()

    def test_failed_run_preserves_previous_output(self, tmp_path, medium_world):
        class ExplodingCrawler(Crawler):
            def run_task(self, task, context=None, *, visit_ids=None):
                raise RuntimeError("boom")

        spool = tmp_path / "out.jsonl"
        spool.write_text("previous complete output\n")
        crawler = ExplodingCrawler(medium_world)
        engine = CrawlEngine(crawler, spool_path=spool)
        plan = crawler.plan_detection_crawl(
            ["DE"], medium_world.crawl_targets[:2]
        )
        with pytest.raises(RuntimeError):
            engine.execute(plan)
        assert spool.read_text() == "previous complete output\n"

    def test_spool_truncated_between_runs(self, tmp_path, medium_world, medium_crawler):
        spool = tmp_path / "records.jsonl"
        engine = CrawlEngine(medium_crawler, spool_path=spool)
        plan = medium_crawler.plan_detection_crawl(
            ["DE"], medium_world.crawl_targets[:5]
        )
        engine.execute(plan)
        engine.execute(plan)
        assert len(list(iter_records(spool))) == 5


class TestProgressReporting:
    def test_final_partial_batch_reports(self, medium_world, medium_crawler):
        calls = []
        medium_crawler.crawl_vp(
            "DE", medium_world.crawl_targets[:37],
            progress=lambda done, total: calls.append((done, total)),
        )
        # A short crawl used to never fire (only every 1000th site did).
        assert calls == [(37, 37)]

    def test_batches_and_final_report(self, monkeypatch, medium_world, medium_crawler):
        import repro.measure.crawl as crawl_mod

        monkeypatch.setattr(crawl_mod, "PROGRESS_BATCH", 10)
        calls = []
        medium_crawler.crawl_vp(
            "DE", medium_world.crawl_targets[:25],
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(10, 25), (20, 25), (25, 25)]

    def test_crawl_all_reports_per_vp(self, monkeypatch, medium_world, medium_crawler):
        import repro.measure.crawl as crawl_mod

        monkeypatch.setattr(crawl_mod, "PROGRESS_BATCH", 10)
        calls = []
        medium_crawler.crawl_all(
            ["DE", "USE"], medium_world.crawl_targets[:15],
            progress=lambda vp, done, total: calls.append((vp, done, total)),
        )
        assert calls == [
            ("DE", 10, 15), ("DE", 15, 15), ("USE", 10, 15), ("USE", 15, 15),
        ]


class TestUBlockErrorTracking:
    def test_unreachable_site_not_reported_suppressed(
        self, medium_world, medium_crawler
    ):
        dead = next(
            d for d, s in medium_world.sites.items() if not s.reachable
        )
        record = medium_crawler.measure_ublock("DE", dead, iterations=2)
        assert record.errors == 2
        assert record.wall_seen_count == 0
        assert not record.suppressed

    def test_reachable_smp_wall_still_suppressed(
        self, medium_world, medium_crawler
    ):
        smp_wall = next(
            d for d in sorted(medium_world.wall_domains)
            if medium_world.sites[d].wall.serving == "smp"
        )
        record = medium_crawler.measure_ublock("DE", smp_wall, iterations=2)
        assert record.errors == 0
        assert record.suppressed
