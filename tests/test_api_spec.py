"""Tests for the RunSpec tree: round-trips, config files, overrides."""

import json

import pytest

from repro.api import (
    CrawlSpec,
    EngineSpec,
    LongitudinalSpec,
    MeasureSpec,
    OutputSpec,
    RunSpec,
    SpecError,
    WorldSpec,
)


def specs_of_every_kind():
    return [
        RunSpec(
            kind="crawl",
            world=WorldSpec(scale=0.01, seed=3),
            engine=EngineSpec(workers=4, shards=8),
            crawl=CrawlSpec(vps=("DE", "USE"), domains=("a.de", "b.de")),
            output=OutputSpec(path="crawl.jsonl"),
        ),
        RunSpec(
            kind="measure",
            world=WorldSpec(scale=0.02, seed=7),
            engine=EngineSpec(retry_max_attempts=3, retry_unreachable=True),
            measure=MeasureSpec(vp="SE", mode="ublock", repeats=2),
            output=OutputSpec(path="ublock.jsonl"),
        ),
        RunSpec(
            kind="longitudinal",
            longitudinal=LongitudinalSpec(vp="DE", months=(0, 2, 4)),
            output=OutputSpec(out_dir="waves"),
        ),
    ]


class TestRoundTrip:
    @pytest.mark.parametrize("spec", specs_of_every_kind(),
                             ids=lambda s: s.kind)
    def test_from_dict_of_to_dict_is_identity(self, spec):
        assert RunSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("spec", specs_of_every_kind(),
                             ids=lambda s: s.kind)
    def test_to_dict_is_json_safe(self, spec):
        assert RunSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec

    def test_to_dict_omits_inactive_workloads(self):
        payload = RunSpec(kind="crawl").to_dict()
        assert set(payload) == {
            "schema_version", "kind", "world", "engine", "resilience",
            "chaos", "crawl", "output",
        }

    def test_save_load_round_trip(self, tmp_path):
        spec = specs_of_every_kind()[0]
        path = spec.save(tmp_path / "spec.json")
        assert RunSpec.load(path) == spec


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(SpecError, match="kind must be one of"):
            RunSpec(kind="teleport").validate()

    def test_unknown_section_key(self):
        with pytest.raises(SpecError, match="unknown key"):
            RunSpec.from_dict({"kind": "crawl", "world": {"sele": 1}})

    def test_unknown_section(self):
        with pytest.raises(SpecError, match="unknown section"):
            RunSpec.from_dict({"kind": "crawl", "wrold": {}})

    def test_months_must_increase(self):
        with pytest.raises(SpecError, match="strictly increasing"):
            RunSpec(
                kind="longitudinal",
                longitudinal=LongitudinalSpec(months=(4, 0)),
            ).validate()

    def test_bad_measure_mode(self):
        with pytest.raises(SpecError, match="measure.mode"):
            RunSpec(
                kind="measure", measure=MeasureSpec(mode="teleport"),
            ).validate()

    def test_resume_needs_output(self):
        with pytest.raises(SpecError, match="--resume"):
            RunSpec(kind="crawl", engine=EngineSpec(resume=True)).validate()
        with pytest.raises(SpecError, match="--out-dir"):
            RunSpec(
                kind="longitudinal", engine=EngineSpec(resume=True),
            ).validate()

    def test_workers_positive(self):
        with pytest.raises(SpecError, match="workers"):
            RunSpec(kind="crawl", engine=EngineSpec(workers=0)).validate()

    def test_executor_backend_validated(self):
        with pytest.raises(SpecError, match="engine.executor"):
            EngineSpec(executor="fiber").validate()
        with pytest.raises(SpecError, match="contradicts"):
            EngineSpec(executor="serial", workers=4).validate()
        for backend in ("serial", "thread", "process"):
            EngineSpec(executor=backend).validate()

    def test_executor_round_trips(self):
        spec = RunSpec(
            kind="crawl",
            engine=EngineSpec(workers=2, executor="process", merge="spool"),
            output=OutputSpec(path="out.jsonl"),
        ).validate()
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_merge_validated_and_needs_output(self):
        with pytest.raises(SpecError, match="engine.merge"):
            EngineSpec(merge="teleport").validate()
        with pytest.raises(SpecError, match="--merge spool"):
            RunSpec(kind="crawl", engine=EngineSpec(merge="spool")).validate()
        with pytest.raises(SpecError, match="--out-dir"):
            RunSpec(
                kind="longitudinal", engine=EngineSpec(merge="spool"),
            ).validate()
        RunSpec(
            kind="measure", engine=EngineSpec(merge="spool"),
            output=OutputSpec(path="m.jsonl"),
        ).validate()

    def test_string_where_list_expected(self):
        with pytest.raises(SpecError, match="one-element list"):
            CrawlSpec.from_dict({"vps": "DE"})
        # months = "04" must be a SpecError too, not a TypeError deep
        # inside validation (tuple("04") == ("0", "4") would even pass
        # the ordering check).
        with pytest.raises(SpecError, match="one-element list"):
            LongitudinalSpec.from_dict({"months": "04"})

    def test_null_months_keeps_default(self):
        assert LongitudinalSpec.from_dict({"months": None}).months == (0, 4)


class TestConfigFiles:
    TOML = """
kind = "crawl"

[world]
scale = 0.01
seed = 3

[engine]
workers = 4

[crawl]
vps = ["DE"]

[output]
path = "out.jsonl"
"""

    def test_load_toml(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text(self.TOML)
        spec = RunSpec.load(path)
        assert spec.kind == "crawl"
        assert spec.world == WorldSpec(scale=0.01, seed=3)
        assert spec.engine.workers == 4
        assert spec.crawl.vps == ("DE",)
        assert spec.output.path == "out.jsonl"

    def test_load_json(self, tmp_path):
        path = tmp_path / "run.json"
        spec = specs_of_every_kind()[1]
        path.write_text(json.dumps(spec.to_dict()))
        assert RunSpec.load(path) == spec

    def test_kind_supplied_by_caller(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text("[world]\nscale = 0.01\n")
        spec = RunSpec.load(path, kind="measure")
        assert spec.kind == "measure"
        with pytest.raises(SpecError, match="needs a 'kind'"):
            RunSpec.load(path)

    def test_kind_conflict_refused(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text('kind = "crawl"\n')
        with pytest.raises(SpecError, match="requested"):
            RunSpec.load(path, kind="measure")

    def test_bad_suffix_refused(self, tmp_path):
        path = tmp_path / "run.yaml"
        path.write_text("kind: crawl\n")
        with pytest.raises(SpecError, match="unsupported config suffix"):
            RunSpec.load(path)

    def test_invalid_toml_reported_with_path(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text("kind = [unclosed\n")
        with pytest.raises(SpecError, match="invalid TOML"):
            RunSpec.load(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read config"):
            RunSpec.load(tmp_path / "nope.toml")


class TestOverride:
    def test_explicit_values_beat_file_values(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text(TestConfigFiles.TOML)
        base = RunSpec.load(path)
        merged = base.override({
            "engine": {"workers": 8},
            "output": {"path": "elsewhere.jsonl"},
        })
        # Overridden fields change; everything else is the file's.
        assert merged.engine.workers == 8
        assert merged.output.path == "elsewhere.jsonl"
        assert merged.world == base.world
        assert merged.crawl == base.crawl

    def test_empty_override_is_identity(self):
        spec = specs_of_every_kind()[0]
        assert spec.override({"world": {}, "engine": {}}) == spec

    def test_override_unknown_field_refused(self):
        with pytest.raises(SpecError, match="unknown key"):
            RunSpec(kind="crawl").override({"engine": {"wrokers": 2}})

    def test_override_validates_result(self):
        with pytest.raises(SpecError, match="strictly increasing"):
            RunSpec(kind="longitudinal").override(
                {"longitudinal": {"months": (3, 1)}}
            )


class TestSchemaVersioning:
    """The wire-schema version: emission, migration, refusal."""

    def test_to_dict_declares_current_version(self):
        from repro.api import SPEC_SCHEMA_VERSION

        for spec in specs_of_every_kind():
            assert spec.to_dict()["schema_version"] == SPEC_SCHEMA_VERSION

    def test_versionless_payload_reads_as_v1(self):
        # The pre-versioning wire format had no schema_version key;
        # it must keep loading forever via the registered migrations.
        spec = specs_of_every_kind()[0]
        payload = spec.to_dict()
        del payload["schema_version"]
        assert RunSpec.from_dict(payload) == spec

    def test_explicit_v1_payload_migrates(self):
        spec = specs_of_every_kind()[1]
        payload = spec.to_dict()
        payload["schema_version"] = 1
        assert RunSpec.from_dict(payload) == spec

    def test_future_version_rejected_readably(self):
        from repro.api import SpecVersionError

        payload = specs_of_every_kind()[0].to_dict()
        payload["schema_version"] = 99
        with pytest.raises(SpecVersionError) as excinfo:
            RunSpec.from_dict(payload)
        message = str(excinfo.value)
        assert "schema_version 99" in message
        assert "newer release" in message

    def test_non_integer_version_rejected(self):
        from repro.api import SpecVersionError

        payload = specs_of_every_kind()[0].to_dict()
        for bad in ("2", 2.0, True, None):
            payload["schema_version"] = bad
            with pytest.raises(SpecVersionError, match="must be an integer"):
                RunSpec.from_dict(payload)

    def test_migrate_helper_is_pure(self):
        from repro.api.spec import migrate_spec_payload

        payload = {"schema_version": 1, "kind": "crawl"}
        migrated = migrate_spec_payload(payload)
        assert "schema_version" not in migrated
        assert payload == {"schema_version": 1, "kind": "crawl"}
