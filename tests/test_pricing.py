"""Tests for price extraction and currency normalisation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pricing import (
    FX_RATES_PER_EUR,
    ExtractedPrice,
    extract_price,
    format_amount,
    to_eur_cents,
)
from repro.pricing.currency import convert_from_eur_cents


class TestCurrency:
    def test_eur_identity(self):
        assert to_eur_cents(299, "EUR") == 299
        assert convert_from_eur_cents(299, "EUR") == 299

    def test_usd_round_trip_close(self):
        usd = convert_from_eur_cents(300, "USD")
        assert usd == 325  # the paper's 3 EUR = 3.25 USD
        assert abs(to_eur_cents(usd, "USD") - 300) <= 1

    @pytest.mark.parametrize("currency", sorted(FX_RATES_PER_EUR))
    def test_round_trip_all_currencies(self, currency):
        for cents in (99, 299, 999):
            converted = convert_from_eur_cents(cents, currency)
            back = to_eur_cents(converted, currency)
            assert abs(back - cents) <= 2

    def test_german_locale_format(self):
        assert format_amount(299, "EUR", locale="de") == "2,99 €"

    def test_english_locale_format(self):
        assert format_amount(325, "USD", locale="en") == "$3.25"
        assert format_amount(290, "CHF", locale="en") == "CHF 2.90"
        assert format_amount(490, "AUD", locale="en") == "AU$4.90"


class TestExtraction:
    @pytest.mark.parametrize(
        "text,cents,currency,period",
        [
            ("das Pur-Abo für nur 2,99 € im Monat", 299, "EUR", "month"),
            ("subscribe for $3.25 per month", 325, "USD", "month"),
            ("ad-free for £2.60/month", 260, "GBP", "month"),
            ("CHF 2.90 pro Monat", 290, "CHF", "month"),
            ("AU$4.90 per month", 490, "AUD", "month"),
            ("nur 35,88 € im Jahr", 3588, "EUR", "year"),
            ("EUR 3.99 monthly", 399, "EUR", "month"),
            ("3.99$ a month", 399, "USD", "month"),
            ("3.99 $ per month", 399, "USD", "month"),
            ("l'abbonamento a 1,99 € al mese", 199, "EUR", "month"),
            ("abonnement voor 2,99 € per maand", 299, "EUR", "month"),
        ],
    )
    def test_extracts(self, text, cents, currency, period):
        price = extract_price(text)
        assert price is not None
        assert price.amount_cents == cents
        assert price.currency == currency
        assert price.period == period

    def test_yearly_normalised_to_month(self):
        price = extract_price("nur 35,88 € im Jahr")
        assert price.monthly_eur_cents == 299

    def test_usd_normalised_to_eur(self):
        price = extract_price("only $3.25 per month")
        assert abs(price.monthly_eur_cents - 300) <= 1

    @pytest.mark.parametrize(
        "text", ["no price here", "", "year 2024", "the $ sign", "100 percent"]
    )
    def test_no_price(self, text):
        assert extract_price(text) is None

    def test_first_price_wins(self):
        price = extract_price("was 4,99 € now 2,99 € im Monat")
        assert price.amount_cents == 499

    def test_price_bucket(self):
        assert ExtractedPrice(299, "EUR", "month", 299).price_bucket == 3
        assert ExtractedPrice(300, "EUR", "month", 300).price_bucket == 3
        assert ExtractedPrice(301, "EUR", "month", 301).price_bucket == 4
        assert ExtractedPrice(99, "EUR", "month", 99).price_bucket == 1

    @given(
        cents=st.integers(min_value=50, max_value=999),
        currency=st.sampled_from(["EUR", "USD", "GBP", "CHF", "AUD"]),
        locale=st.sampled_from(["de", "en", "it", "fr"]),
    )
    def test_property_format_extract_round_trip(self, cents, currency, locale):
        displayed = convert_from_eur_cents(cents, currency)
        text = f"offer: {format_amount(displayed, currency, locale=locale)} per month"
        price = extract_price(text)
        assert price is not None
        assert price.currency == currency
        assert abs(price.monthly_eur_cents - cents) <= 2

    def test_wall_template_prices_extract(self, medium_world):
        """Every generated wall's displayed price must round-trip."""
        from repro.webgen.cookiewalls import wall_body_html
        from repro.soup import make_soup

        for domain in sorted(medium_world.wall_domains):
            spec = medium_world.sites[domain]
            text = make_soup(wall_body_html(spec)).get_text()
            price = extract_price(text)
            assert price is not None, (domain, text)
            assert abs(
                price.monthly_eur_cents - spec.wall.monthly_price_cents
            ) <= 3, (domain, text)
