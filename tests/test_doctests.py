"""Run the doctest examples embedded in public-API docstrings."""

import doctest

import pytest

import repro.api
import repro.api.session
import repro.api.spec
import repro.bannerclick.corpus
import repro.pricing.extract
import repro.rng
import repro.urlkit.psl


@pytest.mark.parametrize(
    "module",
    [
        repro.urlkit.psl,
        repro.rng,
        repro.pricing.extract,
        repro.bannerclick.corpus,
        repro.api,
        repro.api.spec,
        repro.api.session,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
