"""Tests for language detection, categorisation, and justdomains."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocklists import JustDomainsList, builtin_list
from repro.categorize import CATEGORIES, WebFilterDB
from repro.httpkit import Cookie
from repro.lang import (
    CORPORA,
    LANGUAGES,
    LanguageDetector,
    detect_language,
    sample_sentences,
)


class TestLanguageDetector:
    @pytest.fixture(scope="class")
    def detector(self):
        return LanguageDetector()

    @pytest.mark.parametrize("language", sorted(CORPORA))
    def test_detects_own_corpus(self, detector, language):
        text = " ".join(CORPORA[language][:5])
        result = detector.detect(text)
        assert result.language == language
        assert result.is_reliable

    def test_empty_text_unreliable(self, detector):
        result = detector.detect("")
        assert result.language == "und"
        assert not result.is_reliable

    def test_numbers_only_unreliable(self, detector):
        assert not detector.detect("3.99 2026 42").is_reliable

    def test_single_sentences_mostly_correct(self, detector):
        correct = total = 0
        for language, sentences in CORPORA.items():
            for sentence in sentences:
                total += 1
                if detector.detect(sentence).language == language:
                    correct += 1
        assert correct / total > 0.9

    def test_module_level_helper(self):
        assert detect_language("Die Preise sind gestiegen und der Verein sucht Helfer.").language == "de"

    def test_sampled_page_text_detected(self, detector):
        rng = random.Random(99)
        for language in ("de", "en", "it", "sv"):
            text = " ".join(sample_sentences(language, 8, rng))
            assert detector.detect(text).language == language

    def test_languages_property(self, detector):
        assert detector.languages == tuple(sorted(CORPORA))

    @given(language=st.sampled_from(sorted(CORPORA)), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_property_multi_sentence_accuracy(self, language, seed):
        rng = random.Random(seed)
        text = " ".join(sample_sentences(language, 6, rng))
        assert detect_language(text).language == language


class TestWebFilterDB:
    def test_add_and_lookup(self):
        db = WebFilterDB()
        db.add("spiegel.de", "News and Media")
        assert db.lookup("www.spiegel.de") == "News and Media"

    def test_unknown_falls_back(self):
        db = WebFilterDB()
        assert db.lookup("unknown.net") == "Others"

    def test_invalid_category_rejected(self):
        db = WebFilterDB()
        with pytest.raises(ValueError):
            db.add("x.de", "Cat Videos")

    def test_contains_and_len(self):
        db = WebFilterDB({"a.de": "Sports", "b.de": "Games"})
        assert "www.a.de" in db
        assert "c.de" not in db
        assert len(db) == 2

    def test_categories_present(self):
        db = WebFilterDB({"a.de": "Sports", "b.de": "Games"})
        assert db.categories_present() == ["Games", "Sports"]

    def test_figure1_vocabulary_present(self):
        for category in (
            "News and Media", "Business", "Information Technology",
            "Web-based Email", "Personal Vehicles", "Restaurant and Dining",
        ):
            assert category in CATEGORIES


def make_cookie(domain, name="x"):
    return Cookie(name=name, value="1", domain=domain)


class TestJustDomains:
    def test_exact_and_subdomain_match(self):
        jd = JustDomainsList(["tracker.net"])
        assert jd.matches_domain("tracker.net")
        assert jd.matches_domain("sync.tracker.net")
        assert not jd.matches_domain("nottracker.net")

    def test_cookie_classification(self):
        jd = JustDomainsList(["tracker.net"])
        assert jd.is_tracking_cookie(make_cookie("tracker.net"))
        assert not jd.is_tracking_cookie(make_cookie("cdnedge.net"))

    def test_count_tracking(self):
        jd = JustDomainsList(["a.net", "b.net"])
        cookies = [make_cookie("a.net"), make_cookie("x.b.net"), make_cookie("c.net")]
        assert jd.count_tracking(cookies) == 2

    def test_text_round_trip(self):
        jd = JustDomainsList(["b.net", "a.net"])
        parsed = JustDomainsList.from_text(jd.to_text())
        assert sorted(parsed) == ["a.net", "b.net"]

    def test_from_text_skips_comments(self):
        jd = JustDomainsList.from_text("# comment\n\na.net\n  b.net  \n")
        assert len(jd) == 2

    def test_builtin_contains_known_trackers(self):
        jd = builtin_list()
        assert "doubleclick.net" in jd
        assert "trackmax.com" in jd
        assert "google-analytics.com" in jd

    def test_builtin_excludes_cdns_and_smps(self):
        jd = builtin_list()
        assert "cdnedge.net" not in jd
        assert "contentpass.net" not in jd
        assert "opencmp.net" not in jd

    def test_builtin_extension(self):
        jd = builtin_list(extra=["custom-tracker.example"])
        assert "custom-tracker.example" in jd

    def test_dunder_contains_non_string(self):
        assert 42 not in builtin_list()
