"""Benchmark: BannerClick vs the Priv-Accept baseline (paper §2).

Quantifies why the paper's extensions matter: the baseline cannot see
into iframes or shadow DOMs and has no cookiewall classifier, so it
misses most walls entirely.
"""

from conftest import run_once, write_artifact

from repro.bannerclick import BannerClick
from repro.bannerclick.priv_accept import compare_detection


def test_baseline_comparison(benchmark, bench_world):
    walls = sorted(bench_world.wall_domains)

    def produce():
        return compare_detection(
            lambda: bench_world.browser("DE"), walls, BannerClick()
        )

    stats = run_once(benchmark, produce)
    text = (
        f"wall sites:                 {stats['total']}\n"
        f"Priv-Accept found accept:   {stats['priv_accept_found']}\n"
        f"BannerClick found accept:   {stats['bannerclick_found']}\n"
        f"BannerClick-only coverage:  {stats['bannerclick_only']}\n"
        f"classified as cookiewalls:  {stats['walls_flagged_by_bannerclick']}"
    )
    write_artifact("baseline_comparison", text)
    print()
    print(text)
    assert stats["bannerclick_found"] == stats["total"]
    assert stats["walls_flagged_by_bannerclick"] == stats["total"]
    # The baseline only reaches main-document walls (72/280 in the paper).
    assert stats["priv_accept_found"] < stats["total"] * 0.5
