"""Benchmarks + artefacts: Figures 1–3 (categories, prices)."""

from conftest import run_once, write_artifact

from repro.analysis.figures import compute_fig1, compute_fig2, compute_fig3


def test_fig1_categories(benchmark, bench_world, bench_context, warm_crawl):
    def produce():
        return compute_fig1(
            bench_context.verified_wall_domains(), bench_world.category_db
        )

    figure = run_once(benchmark, produce)
    write_artifact("fig1", figure.render())
    print()
    print(figure.render())
    top_category, top_share = figure.shares[0]
    assert top_category == "News and Media"      # paper: >25%
    assert top_share > 0.2


def test_fig2_price_distribution(benchmark, bench_context, warm_crawl):
    def produce():
        return compute_fig2(bench_context.verified_wall_records_de())

    figure = run_once(benchmark, produce)
    write_artifact("fig2", figure.render())
    print()
    print(figure.render())
    assert figure.unparsed_domains == []
    assert figure.modal_bucket() == 3            # paper: 3 EUR dominates
    assert figure.fraction_at_most(4.0) >= 0.8   # paper: ~90% <= 4 EUR


def test_fig3_category_vs_price(benchmark, bench_world, bench_context, warm_crawl):
    figure2 = compute_fig2(bench_context.verified_wall_records_de())

    def produce():
        return compute_fig3(figure2, bench_world.category_db)

    figure = run_once(benchmark, produce)
    write_artifact("fig3", figure.render())
    print()
    print(figure.render())
    # Paper: no obvious relationship — category means stay in a band
    # far narrower than the 1–10 EUR price range itself.  Small
    # categories can catch one of the few >=9 EUR outliers, so the
    # band check uses categories with a meaningful sample.
    means = [figure.mean_price(c) for c in figure.by_category
             if len(figure.by_category[c]) >= 5]
    assert means
    assert max(means) - min(means) < 5.0
