"""Benchmarks for the streaming geo-discrepancy report.

Two gates, both written to ``benchmarks/output/BENCH_discrepancy.json``
for the CI floor check:

* **Report throughput** — records/sec through
  :class:`~repro.analysis.discrepancy.StreamingDiscrepancyReport`,
  floored so the report stays cheap enough to fold inline into a
  multi-vantage campaign's record stream.
* **Memory flatness vs vantage points** — the report keeps per-domain
  cross-VP *reductions*, not per-VP values, so its allocation peak
  must stay flat as vantage points are added.  ``tracemalloc`` peaks
  of an 8-VP campaign stream versus a 2-VP one over the same domain
  population; the records are generated lazily so the peak measures
  report state, not the input list.
"""

import json
import os
import random
import tracemalloc

from conftest import OUTPUT_DIR, run_once, write_artifact

from repro.analysis.discrepancy import StreamingDiscrepancyReport
from repro.measure.records import VisitRecord
from repro.vantage import VP_ORDER

#: CI gate: the report must sustain at least this many records/sec
#: (pure-Python dict aggregation plus price extraction on ~10% of
#: records; local runs sustain well over 100k — the floor leaves
#: ~10x for slow runners).
_REPORT_FLOOR_RECORDS_PER_SEC = 15_000
#: CI gate: the 8-VP allocation peak over the same domains must stay
#: within this factor of the 2-VP peak (per-domain state is VP-count
#: independent; only the small per-(wave, vp) counters grow).
_VP_PEAK_RATIO_CEILING = 1.5

_DOMAINS = 3_000
_WAVES = (0, 3)


def _campaign_records(domains: int, vps, waves, seed: int = 2023):
    """Lazily generate a plausible campaign stream: ``(wave, record)``
    pairs, ~10% accept-or-pay walls with price text, EU-heavier walls,
    occasional TCF strings and third-party cookie sets."""
    rng = random.Random(seed)
    profiles = []
    for index in range(domains):
        profiles.append((
            f"site{index:05d}.example",
            rng.random() < 0.10,            # wall site
            rng.random() < 0.25,            # banner site
            rng.randrange(90, 990, 50),     # wall price, EUR cents
            rng.random() < 0.3,             # tcf-bearing consent UI
        ))
    for wave in waves:
        for domain, walled, banner, cents, tcf in profiles:
            for vp_index, vp in enumerate(vps):
                wall = walled and vp in ("DE", "SE")
                flags = {}
                if tcf and (wall or banner):
                    flags["tcf_accept"] = f"CP{vp_index:03d}x{wave}"
                if banner or wall:
                    flags["cookies_third_party"] = [
                        f"ads{k}.example" for k in range(vp_index % 3 + 1)
                    ]
                yield wave, VisitRecord(
                    vp=vp,
                    domain=domain,
                    is_cookiewall=wall,
                    banner_found=wall or banner,
                    has_accept=wall or banner,
                    banner_text=(
                        f"Accept cookies or subscribe for "
                        f"{cents / 100:.2f} € per month" if wall else ""
                    ),
                    flags=flags,
                )


def _update_payload(section: str, data: dict) -> None:
    """Merge one section into BENCH_discrepancy.json (tests run in
    file order under ``-x``; the CI gate reads the file after both)."""
    out = OUTPUT_DIR / "BENCH_discrepancy.json"
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload[section] = data
    payload.setdefault("meta", {})["cpus"] = os.cpu_count() or 1
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def _tracemalloc_peak_kb(fn) -> float:
    """Peak Python allocation (KB) while *fn* runs."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1024.0


def test_discrepancy_report_throughput(benchmark):
    """Records/sec through the one-pass discrepancy aggregation."""
    stream = list(_campaign_records(_DOMAINS, VP_ORDER, _WAVES))

    def one_pass():
        report = StreamingDiscrepancyReport()
        for wave, record in stream:
            report.add(record, wave=wave)
        return report

    report = run_once(benchmark, one_pass)
    elapsed = benchmark.stats.stats.total
    rate = len(stream) / elapsed if elapsed else 0.0
    assert report.record_count == len(stream)
    assert report.eu_delta()["delta"] > 0
    assert report.discrepancies()["wall_partial"]["domains"] > 0

    _update_payload("throughput", {
        "records": len(stream),
        "vps": len(VP_ORDER),
        "waves": len(_WAVES),
        "seconds": round(elapsed, 4),
        "records_per_sec": round(rate, 1),
        "floor_records_per_sec": _REPORT_FLOOR_RECORDS_PER_SEC,
    })
    write_artifact(
        "discrepancy_report_throughput",
        f"discrepancy report: {len(stream)} records in {elapsed:.3f}s "
        f"({rate:,.0f} records/sec; "
        f"floor {_REPORT_FLOOR_RECORDS_PER_SEC:,})",
    )
    assert rate >= _REPORT_FLOOR_RECORDS_PER_SEC, (
        f"discrepancy report fell to {rate:,.0f} records/sec "
        f"(floor {_REPORT_FLOOR_RECORDS_PER_SEC:,})"
    )


def test_discrepancy_memory_flat_in_vantage_points(benchmark):
    """Allocation peak: 8 vantage points vs 2, same domains.

    Both streams are consumed lazily, so the peak is the report's own
    state.  Per-domain aggregates dominate and are shared; quadrupling
    the vantage points must not meaningfully move the peak.
    """
    def consume(vps):
        report = StreamingDiscrepancyReport()
        for wave, record in _campaign_records(_DOMAINS, vps, _WAVES):
            report.add(record, wave=wave)
        assert report.record_count == _DOMAINS * len(vps) * len(_WAVES)
        return report

    narrow_peak_kb = _tracemalloc_peak_kb(lambda: consume(("USE", "DE")))
    wide_peak_kb = run_once(
        benchmark, lambda: _tracemalloc_peak_kb(lambda: consume(VP_ORDER))
    )
    ratio = wide_peak_kb / narrow_peak_kb

    _update_payload("memory", {
        "domains": _DOMAINS,
        "narrow_vps": 2,
        "wide_vps": len(VP_ORDER),
        "narrow_peak_kb": round(narrow_peak_kb, 1),
        "wide_peak_kb": round(wide_peak_kb, 1),
        "peak_ratio": round(ratio, 4),
        "ratio_ceiling": _VP_PEAK_RATIO_CEILING,
    })
    write_artifact(
        "discrepancy_memory_flatness",
        f"discrepancy report peak over {_DOMAINS} domains x "
        f"{len(_WAVES)} waves:\n"
        f"2 VPs: {narrow_peak_kb:.0f} KB\n"
        f"{len(VP_ORDER)} VPs: {wide_peak_kb:.0f} KB "
        f"({ratio:.2f}x; ceiling {_VP_PEAK_RATIO_CEILING}x)",
    )
    assert ratio <= _VP_PEAK_RATIO_CEILING, (
        f"discrepancy report peak grew {ratio:.2f}x from 2 to "
        f"{len(VP_ORDER)} vantage points (ceiling "
        f"{_VP_PEAK_RATIO_CEILING}x); per-VP state is leaking into "
        "the per-domain aggregates"
    )
