"""Ablation benchmarks: the design choices DESIGN.md calls out.

Each ablation disables one capability of the detector and measures the
recall drop over the (ground-truth) wall population — quantifying why
BannerClick needed shadow-DOM and iframe support (paper §3) and what
each half of the cookiewall classifier contributes.
"""

import pytest
from conftest import run_once, write_artifact

from repro.bannerclick import BannerClick


def _recall(world, detector, domains):
    hits = 0
    for domain in domains:
        browser = world.browser("DE")
        page = browser.visit(domain)
        if detector.detect(page).is_cookiewall:
            hits += 1
    return hits / len(domains)


@pytest.fixture(scope="module")
def wall_domains(bench_world):
    return sorted(bench_world.wall_domains)


def test_ablation_full_detector(benchmark, bench_world, wall_domains):
    recall = run_once(
        benchmark, lambda: _recall(bench_world, BannerClick(), wall_domains)
    )
    write_artifact("ablation_full", f"recall: {recall:.3f}")
    assert recall == 1.0


def test_ablation_no_shadow_dom(benchmark, bench_world, wall_domains):
    detector = BannerClick(shadow_dom=False)
    recall = run_once(
        benchmark, lambda: _recall(bench_world, detector, wall_domains)
    )
    shadow_share = sum(
        1 for d in wall_domains
        if bench_world.sites[d].wall.placement.startswith("shadow")
    ) / len(wall_domains)
    write_artifact(
        "ablation_no_shadow",
        f"recall: {recall:.3f} (shadow walls: {shadow_share:.3f})",
    )
    # Without the workaround, every shadow wall is missed (paper: 76/280).
    assert recall == pytest.approx(1.0 - shadow_share, abs=0.01)


def test_ablation_no_closed_shadow(benchmark, bench_world, wall_domains):
    detector = BannerClick(closed_shadow=False)
    recall = run_once(
        benchmark, lambda: _recall(bench_world, detector, wall_domains)
    )
    closed_share = sum(
        1 for d in wall_domains
        if bench_world.sites[d].wall.placement == "shadow-closed"
    ) / len(wall_domains)
    write_artifact(
        "ablation_no_closed_shadow",
        f"recall: {recall:.3f} (closed-shadow walls: {closed_share:.3f})",
    )
    assert recall == pytest.approx(1.0 - closed_share, abs=0.01)


def test_ablation_no_iframes(benchmark, bench_world, wall_domains):
    detector = BannerClick(iframes=False)
    recall = run_once(
        benchmark, lambda: _recall(bench_world, detector, wall_domains)
    )
    iframe_share = sum(
        1 for d in wall_domains
        if bench_world.sites[d].wall.placement == "iframe"
    ) / len(wall_domains)
    write_artifact(
        "ablation_no_iframes",
        f"recall: {recall:.3f} (iframe walls: {iframe_share:.3f})",
    )
    # Paper: 132/280 walls live in iframes — all lost without support.
    assert recall == pytest.approx(1.0 - iframe_share, abs=0.01)


def test_ablation_words_only(benchmark, bench_world, wall_domains):
    """Subscription words without currency patterns (classifier half 1)."""
    detector = BannerClick(currency_patterns=False)
    recall = run_once(
        benchmark, lambda: _recall(bench_world, detector, wall_domains)
    )
    write_artifact("ablation_words_only", f"recall: {recall:.3f}")
    # Spanish walls carry no corpus word — words alone lose them.
    assert recall < 1.0 or not any(
        bench_world.sites[d].language == "es" for d in wall_domains
    )


def test_ablation_currency_only(benchmark, bench_world, wall_domains):
    """Currency patterns without subscription words (classifier half 2)."""
    detector = BannerClick(subscription_words=False)
    recall = run_once(
        benchmark, lambda: _recall(bench_world, detector, wall_domains)
    )
    write_artifact("ablation_currency_only", f"recall: {recall:.3f}")
    # Every generated wall displays a price, so currency alone suffices;
    # the words half exists for walls that hide the price behind a click.
    assert recall == 1.0


def test_ablation_repeat_count(benchmark, bench_world, wall_domains):
    """1-visit vs 5-visit cookie averages (measurement stability)."""
    from repro.measure.crawl import Crawler

    crawler = Crawler(bench_world)
    sample = wall_domains[: min(20, len(wall_domains))]

    def produce():
        single = [
            crawler.measure_accept_cookies("DE", d, repeats=1) for d in sample
        ]
        five = [
            crawler.measure_accept_cookies("DE", d, repeats=5) for d in sample
        ]
        return single, five

    single, five = run_once(benchmark, produce)
    drift = [
        abs(a.avg_tracking - b.avg_tracking)
        for a, b in zip(single, five)
    ]
    mean_drift = sum(drift) / len(drift)
    write_artifact(
        "ablation_repeats",
        f"mean |tracking(1-visit) - tracking(5-visit)| = {mean_drift:.2f}",
    )
    # Ad rotation makes single visits noisy but not wildly off.
    assert mean_drift < 10
