"""Benchmarks + artefacts: §3 accuracy, §4.5 uBlock, §4.1 landscape, §4.4 SMPs."""

from conftest import run_once, write_artifact

from repro.analysis.report import compute_landscape
from repro.measure.accuracy import evaluate_records, random_audit


def test_accuracy(benchmark, bench_world, bench_context, warm_crawl):
    """Full-run precision plus the 1000-domain random audit."""

    def produce():
        full = evaluate_records(bench_world, warm_crawl.by_vp("DE"))
        audit = random_audit(
            bench_world, bench_context.crawler,
            sample_size=min(1000, len(bench_world.crawl_targets)),
        )
        return full, audit

    full, audit = run_once(benchmark, produce)
    text = (
        f"full run: {full.detected} detected, {full.true_positives} true, "
        f"precision {full.precision * 100:.1f}%, recall {full.recall * 100:.1f}%\n"
        f"random audit: {audit.detected} detected, "
        f"precision {audit.precision * 100:.1f}%, recall {audit.recall * 100:.1f}%"
    )
    write_artifact("accuracy", text)
    print()
    print(text)
    assert full.recall == 1.0
    assert full.precision >= 0.9          # paper: 98.2%
    assert audit.recall == 1.0            # paper: all 6 sample walls found


def test_ublock_bypass(benchmark, bench_world, bench_context, warm_crawl):
    """uBlock with Annoyances: ~70% of walls suppressed, 2 broken."""

    def produce():
        return bench_context.ublock_records()

    records = run_once(benchmark, produce)
    suppressed = [r for r in records if r.suppressed]
    broken = [r for r in suppressed if r.broken]
    share = len(suppressed) / len(records)
    text = (
        f"walls tested: {len(records)}\n"
        f"suppressed:   {len(suppressed)} ({share * 100:.0f}%)\n"
        f"broken:       {len(broken)} "
        f"({'; '.join(f'{r.domain}: {r.broken_reason}' for r in broken)})"
    )
    write_artifact("ublock", text)
    print()
    print(text)
    assert 0.55 < share < 0.85            # paper: 70%


def test_landscape(benchmark, bench_world, warm_crawl):
    def produce():
        return compute_landscape(bench_world, warm_crawl)

    report = run_once(benchmark, produce)
    write_artifact("landscape", report.render())
    print()
    print(report.render())
    assert report.germany_top1k_rate > report.germany_top10k_rate
    assert report.germany_top10k_rate > report.overall_rate
    assert 0.001 < report.overall_rate < 0.02


def test_smp_rosters(benchmark, bench_world, bench_context, warm_crawl):
    def produce():
        detected = set(bench_context.verified_wall_domains())
        out = {}
        for name, platform in bench_world.platforms.items():
            on_list = [
                d for d in platform.partner_domains
                if bench_world.sites[d].listings
            ]
            out[name] = (
                len(platform.partner_domains),
                len(on_list),
                len(detected & set(on_list)),
            )
        return out

    rosters = run_once(benchmark, produce)
    lines = []
    for name, (partners, on_list, detected) in sorted(rosters.items()):
        lines.append(
            f"{name}: {partners} partners, {on_list} on the toplists, "
            f"{detected} detected as walls"
        )
    text = "\n".join(lines)
    write_artifact("smp", text)
    print()
    print(text)
    cp_partners, cp_on_list, cp_detected = rosters["contentpass"]
    assert cp_on_list < cp_partners       # paper: 76 of 219 on the lists
    assert cp_detected == cp_on_list      # every listed partner detected
