"""Benchmark + artefact: Table 1 (cookiewalls per vantage point)."""

from conftest import run_once, write_artifact

from repro.analysis.tables import compute_table1


def test_table1(benchmark, bench_world, bench_context, warm_crawl):
    """Regenerate Table 1 from the shared detection crawl."""

    def produce():
        return compute_table1(bench_world, warm_crawl)

    table = run_once(benchmark, produce)
    write_artifact("table1", table.render())
    print()
    print(table.render())
    de = table.row("DE")
    use = table.row("USE")
    # Paper shape: Germany sees the most walls; US toplist/ccTLD are 0.
    assert de.cookiewalls >= max(r.cookiewalls for r in table.rows)
    assert use.toplist == 0 and use.cctld == 0
    assert de.toplist > 0 and de.cctld > 0 and de.language > 0
