"""Benchmarks for the one-pass pipeline: streaming analysis + resume.

Two gates, both written to ``benchmarks/output/BENCH_streaming.json``
for the CI floor check:

* **Analysis throughput** — records/sec through
  :class:`~repro.analysis.streaming.StreamingCrawlAnalysis` (the
  single pass that produces Table 1, the landscape report, and
  Figures 1–3 at once), floored so the aggregators stay cheap enough
  to run inline with a crawl.
* **Resume memory** — peak Python allocation of the streaming
  checkpoint reconcile versus the materialised every-outcome-in-a-dict
  shape it replaced.  ``tracemalloc`` rather than RSS because
  ``ru_maxrss`` is lifetime-monotonic — an in-process before/after
  comparison would be meaningless (the whole-process RSS claim is
  guarded separately by ``large_world_smoke.py --flat-scales``).
"""

import json
import os
import tracemalloc

from conftest import BENCH_SEED, OUTPUT_DIR, run_once, write_artifact

from repro.analysis.streaming import StreamingCrawlAnalysis
from repro.measure.crawl import Crawler
from repro.measure.engine import CrawlEngine, FaultInjectingExecutor
from repro.measure.storage import iter_jsonl
from repro.webgen import build_world

#: CI gate: the single-pass analysis must sustain at least this many
#: records/sec (pure-Python dict aggregation; local runs sustain
#: hundreds of thousands — the floor leaves ~10x for slow runners).
_ANALYSIS_FLOOR_RECORDS_PER_SEC = 20_000
#: CI gate: the streaming reconcile's allocation peak must stay under
#: this fraction of the materialised replay's (in practice it is a few
#: percent — an index set instead of every outcome payload).
_RESUME_PEAK_RATIO_CEILING = 0.5

_RESUME_WORKERS = 4
_RESUME_SHARDS = 8


def _update_payload(section: str, data: dict) -> None:
    """Merge one section into BENCH_streaming.json (tests run in file
    order under ``-x``; the CI gate reads the file after both)."""
    out = OUTPUT_DIR / "BENCH_streaming.json"
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload[section] = data
    payload.setdefault("meta", {})["cpus"] = os.cpu_count() or 1
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def _tracemalloc_peak_kb(fn) -> float:
    """Peak Python allocation (KB) while *fn* runs."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1024.0


def test_streaming_analysis_throughput(benchmark, bench_world, warm_crawl):
    """Records/sec through the single-pass detection aggregators."""
    records = warm_crawl.records

    def one_pass():
        return StreamingCrawlAnalysis(bench_world).consume(records)

    analysis = run_once(benchmark, one_pass)
    elapsed = benchmark.stats.stats.total
    rate = len(records) / elapsed if elapsed else 0.0
    assert analysis.record_count == len(records)
    assert analysis.detected_wall_domains()

    _update_payload("analysis", {
        "records": len(records),
        "seconds": round(elapsed, 4),
        "records_per_sec": round(rate, 1),
        "floor_records_per_sec": _ANALYSIS_FLOOR_RECORDS_PER_SEC,
    })
    write_artifact(
        "streaming_analysis_throughput",
        f"one-pass analysis: {len(records)} records in {elapsed:.3f}s "
        f"({rate:,.0f} records/sec; "
        f"floor {_ANALYSIS_FLOOR_RECORDS_PER_SEC:,})",
    )
    assert rate >= _ANALYSIS_FLOOR_RECORDS_PER_SEC, (
        f"streaming analysis fell to {rate:,.0f} records/sec "
        f"(floor {_ANALYSIS_FLOOR_RECORDS_PER_SEC:,})"
    )


def test_streaming_reconcile_memory(benchmark, tmp_path):
    """Peak allocation of checkpoint reconcile: streaming vs held-dict.

    Crash a spool-merge crawl at ~half, leaving a checkpoint full of
    replayable outcomes, then reconcile it two ways over the same
    bytes: the materialised baseline (every outcome payload parsed
    into one dict — the shape the streaming merge replaced) and the
    real streaming reconcile (k-way run merge; holds the completed
    index set and one line per run).  The streaming peak must be a
    small fraction of the materialised peak.
    """
    world = build_world(scale=0.05, seed=BENCH_SEED)
    crawler = Crawler(world)
    plan = crawler.plan_detection_crawl(["DE"])
    out = tmp_path / "crawl.jsonl"
    checkpoint = tmp_path / "crawl.jsonl.checkpoint"
    victims = {s for s in range(_RESUME_SHARDS) if s % 2}

    crashed = CrawlEngine(
        crawler, workers=_RESUME_WORKERS, shards=_RESUME_SHARDS,
        merge="spool", spool_path=out, checkpoint_path=checkpoint,
        executor=FaultInjectingExecutor(_RESUME_WORKERS, victims),
    )
    try:
        crashed.execute(plan)
        raise AssertionError("fault injection did not fire")
    except RuntimeError:
        pass
    checkpoint_bytes = checkpoint.stat().st_size

    # Baseline: the pre-streaming shape — every replayed outcome
    # payload held at once, keyed by plan index (read-only; runs
    # first because the real reconcile rewrites the checkpoint).
    def materialised_replay():
        replayed = {}
        for _, payload in iter_jsonl(checkpoint):
            if payload.get("kind") == "outcome":
                replayed[payload["index"]] = payload
        assert replayed
        return replayed

    materialised_peak_kb = _tracemalloc_peak_kb(materialised_replay)

    resumer = CrawlEngine(
        crawler, workers=_RESUME_WORKERS, shards=_RESUME_SHARDS,
        merge="spool", spool_path=out, checkpoint_path=checkpoint,
        resume=True,
    )
    replay_box = {}

    def streaming_reconcile():
        replay_box["replay"] = resumer._reconcile_checkpoint(plan)

    streaming_peak_kb = run_once(
        benchmark, lambda: _tracemalloc_peak_kb(streaming_reconcile)
    )
    replay = replay_box["replay"]
    assert replay.count > 0
    assert replay.outcomes == []  # spool mode holds no outcome objects
    assert replay.resume_part is not None

    ratio = streaming_peak_kb / materialised_peak_kb
    _update_payload("resume", {
        "checkpoint_outcomes": replay.count,
        "checkpoint_kb": round(checkpoint_bytes / 1024.0, 1),
        "streaming_reconcile_peak_kb": round(streaming_peak_kb, 1),
        "materialised_replay_peak_kb": round(materialised_peak_kb, 1),
        "peak_ratio": round(ratio, 4),
        "ratio_ceiling": _RESUME_PEAK_RATIO_CEILING,
    })
    write_artifact(
        "streaming_reconcile_memory",
        f"checkpoint: {replay.count} replayable outcomes, "
        f"{checkpoint_bytes / 1024:.0f} KB\n"
        f"materialised replay peak: {materialised_peak_kb:.0f} KB\n"
        f"streaming reconcile peak: {streaming_peak_kb:.0f} KB "
        f"({ratio:.1%} of materialised; "
        f"ceiling {_RESUME_PEAK_RATIO_CEILING:.0%})",
    )
    assert ratio <= _RESUME_PEAK_RATIO_CEILING, (
        f"streaming reconcile peaked at {streaming_peak_kb:.0f} KB — "
        f"{ratio:.1%} of the materialised replay's "
        f"{materialised_peak_kb:.0f} KB (ceiling "
        f"{_RESUME_PEAK_RATIO_CEILING:.0%}); the resume path is "
        "holding the replay set again"
    )
