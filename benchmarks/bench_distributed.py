"""Distributed-executor benchmarks: dispatch overhead + throughput.

Two gates, written to ``benchmarks/output/BENCH_distributed.json``
for the CI floor check (mirroring the other ``BENCH_*`` artefacts):

* **Dispatch overhead** — a near-empty plan through the distributed
  backend measures everything that is *not* crawling: spawning the
  worker processes, the socket handshake, shipping the pickled shared
  state, the workers' deterministic world rebuild, and the result
  merge.  The ceiling keeps that fixed cost bounded (a regression
  here taxes every distributed campaign, however large).
* **Throughput** — tasks/sec on a real plan through one coordinator
  plus two socket workers.  The floor is deliberately conservative
  (local runs sustain far more) so only a genuine collapse — e.g. the
  wire layer serialising per task instead of per shard — trips it.

Both runs also re-assert the byte-identity contract against a serial
reference; a fast-but-wrong distributed plane must never pass the
bench.
"""

import json
import os
import time

from conftest import BENCH_SEED, OUTPUT_DIR, write_artifact

from repro.measure.crawl import Crawler
from repro.measure.engine import CrawlEngine
from repro.webgen import build_world

#: CI gate: wall-clock seconds for the overhead-dominated tiny plan
#: (worker spawn + handshake + world rebuild + merge; crawling is
#: negligible).  Local runs take ~2-4s; the ceiling leaves room for
#: slow shared runners without ever tolerating a pathological plane.
_DISPATCH_CEILING_SEC = 30.0
#: CI gate: tasks/sec through 2 socket workers on the real plan.
_THROUGHPUT_FLOOR_TASKS_PER_SEC = 15

_WORKERS = 2
_SHARDS = 8
_TINY_TASKS = 8
_SAMPLE_SIZE = 240


def _update_payload(section: str, data: dict) -> None:
    """Merge one section into BENCH_distributed.json (tests run in
    file order under ``-x``; the CI gate reads the file after both)."""
    out = OUTPUT_DIR / "BENCH_distributed.json"
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload[section] = data
    payload.setdefault("meta", {}).update({
        "cpus": os.cpu_count() or 1,
        "workers": _WORKERS,
        "shards": _SHARDS,
    })
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def _bench_world():
    world = build_world(scale=0.05, seed=BENCH_SEED)
    return world, Crawler(world)


def _serial_spool(crawler, sample, path):
    plan = crawler.plan_detection_crawl(["DE"], sample)
    CrawlEngine(crawler, spool_path=path).execute(plan)
    return path.read_bytes()


def _distributed_run(crawler, sample, path):
    plan = crawler.plan_detection_crawl(["DE"], sample)
    engine = CrawlEngine(
        crawler, workers=_WORKERS, shards=_SHARDS,
        backend="distributed", spool_path=path,
    )
    started = time.perf_counter()
    result = engine.execute(plan)
    elapsed = time.perf_counter() - started
    assert result.record_count == len(plan)
    return path.read_bytes(), elapsed


def test_dispatch_overhead(tmp_path):
    """The fixed cost of standing up the distributed plane."""
    world, crawler = _bench_world()
    sample = world.crawl_targets[:_TINY_TASKS]
    spool, elapsed = _distributed_run(
        crawler, sample, tmp_path / "distributed.jsonl"
    )
    # Correctness before speed: the tiny run must still match serial.
    assert spool == _serial_spool(
        crawler, sample, tmp_path / "serial.jsonl"
    )
    _update_payload("dispatch", {
        "tasks": _TINY_TASKS,
        "seconds": round(elapsed, 4),
        "ceiling_sec": _DISPATCH_CEILING_SEC,
    })
    write_artifact(
        "distributed_dispatch_overhead",
        f"tiny plan: {_TINY_TASKS} tasks, {_WORKERS} socket workers\n"
        f"spawn + handshake + rebuild + merge: {elapsed:.2f}s\n"
        f"ceiling: {_DISPATCH_CEILING_SEC:.0f}s",
    )
    assert elapsed <= _DISPATCH_CEILING_SEC


def test_distributed_throughput(tmp_path):
    """Tasks/sec through one coordinator and two socket workers."""
    world, crawler = _bench_world()
    sample = world.crawl_targets[:_SAMPLE_SIZE]
    spool, elapsed = _distributed_run(
        crawler, sample, tmp_path / "distributed.jsonl"
    )
    assert spool == _serial_spool(
        crawler, sample, tmp_path / "serial.jsonl"
    )
    rate = _SAMPLE_SIZE / elapsed if elapsed else 0.0
    _update_payload("throughput", {
        "tasks": _SAMPLE_SIZE,
        "seconds": round(elapsed, 4),
        "tasks_per_sec": round(rate, 1),
        "floor_tasks_per_sec": _THROUGHPUT_FLOOR_TASKS_PER_SEC,
    })
    write_artifact(
        "distributed_throughput",
        f"plan: {_SAMPLE_SIZE} tasks, {_WORKERS} socket workers, "
        f"{_SHARDS} shards\n"
        f"throughput: {rate:.1f} tasks/sec\n"
        f"floor: {_THROUGHPUT_FLOOR_TASKS_PER_SEC} tasks/sec",
    )
    assert rate >= _THROUGHPUT_FLOOR_TASKS_PER_SEC
