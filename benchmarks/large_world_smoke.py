"""Large-world memory smoke: the O(shard-buffer) merge claim, enforced.

Runs a detection crawl of a much-bigger-than-test world through the
**process executor with the spool-backed merge** and fails if the
parent process's peak RSS exceeds a documented ceiling.  The spool
merge holds one shard's outcomes at a time plus one buffered line per
part file during the k-way join, so peak memory is dominated by the
world itself (the synthetic web is in RAM by design) — if someone
reintroduces an O(records) buffer into the merge path, this guard
trips long before a paper-scale campaign would OOM.

Run by the scheduled / ``workflow_dispatch`` ``large-world-smoke`` CI
job; locally::

    PYTHONPATH=src python benchmarks/large_world_smoke.py --scale 0.2

``--flat-scales A B`` runs the smoke **twice, in fresh subprocesses**
(``ru_maxrss`` is lifetime-monotonic, so each scale needs its own
process) and then asserts the crawl's RSS *delta* stays flat as the
world grows: the streaming pipeline's working set is the plan plus one
shard's buffers, so doubling the record count must not double the
delta.  The tolerance (``--flat-slack-mb``, default 96 MB) absorbs the
parts that legitimately scale — the O(tasks) plan, proportionally
larger shard buffers, allocator slop — while still tripping on the
real regression this mode exists for: materialising the record stream,
which at 0.2-scale adds hundreds of MB, not tens.

Ceiling calibration (documented so failures are interpretable): at
``--scale 0.2``, all eight vantage points (~72k tasks), the world
plus interpreter sits around 45 MB and the spool-merged crawl adds
~110 MB — the 72k-task plan, warm parse/filter caches, and one
shard's buffers, all O(tasks)-or-bounded, none O(records-held).  The
defaults — 512 MB peak, 256 MB crawl delta — leave ~2× headroom for
platform variance while tripping on the expensive regressions
(buffering encoded payload dicts, event streams, or whole-world
outcome lists through the merge); the *compact*-record laziness
(``EngineResult.outcomes is None``, lazy ``RunResult``) is pinned
separately by the executor-backend test matrix.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.measure import CrawlEngine, Crawler
from repro.measure.storage import iter_records
from repro.webgen import build_world

#: Default peak-RSS ceiling (MB) for the default --scale 0.2 run.
DEFAULT_CEILING_MB = 512
#: Default ceiling (MB) on RSS growth between world build and crawl
#: end — the part the merge strategy controls.
DEFAULT_DELTA_CEILING_MB = 256
DEFAULT_SCALE = 0.2
#: Default slack (MB) allowed between the crawl RSS deltas of the two
#: ``--flat-scales`` runs.  The plan is O(tasks) and the shard buffers
#: grow with world size, so "flat" means tens of MB apart — record
#: materialisation would differ by hundreds.
DEFAULT_FLAT_SLACK_MB = 96


def peak_rss_mb() -> float:
    """This process's lifetime peak RSS in MB (ru_maxrss is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def run_flat_scales(args) -> int:
    """Run the smoke at two scales and require a flat crawl RSS delta.

    Each scale gets a **fresh subprocess**: ``ru_maxrss`` never goes
    down, so a second in-process run would inherit the first run's
    peak and the comparison would be meaningless.  Only the crawl's
    RSS *growth* (``crawl_rss_delta_mb``) is compared — the world
    itself is in RAM by design and scales with ``--scale``.
    """
    small, large = sorted(args.flat_scales)
    summaries = []
    with tempfile.TemporaryDirectory(prefix="flat-scales-") as tmp:
        for scale in (small, large):
            summary_path = Path(tmp) / f"scale-{scale}.json"
            cmd = [
                sys.executable, __file__,
                "--scale", str(scale),
                "--seed", str(args.seed),
                "--workers", str(args.workers),
                "--shards", str(args.shards),
                # The per-run ceilings are the flat comparison's job
                # here; disable them so a single loose run can't mask
                # or double-report.
                "--rss-ceiling-mb", "1e9",
                "--rss-delta-ceiling-mb", "1e9",
                "--summary-json", str(summary_path),
            ]
            for vp in args.vp or ():
                cmd += ["--vp", vp]
            print(f"--- flat-scales: scale {scale} ---", flush=True)
            proc = subprocess.run(cmd, env=os.environ.copy())
            if proc.returncode != 0:
                print(f"FAIL: scale-{scale} subprocess exited "
                      f"{proc.returncode}", file=sys.stderr)
                return 1
            summaries.append(
                json.loads(summary_path.read_text(encoding="utf-8"))
            )
    deltas = [s["crawl_rss_delta_mb"] for s in summaries]
    growth = deltas[1] - deltas[0]
    ratio = summaries[1]["records"] / max(summaries[0]["records"], 1)
    print(f"flat-scales: crawl RSS delta {deltas[0]:.0f} MB @ scale "
          f"{small} vs {deltas[1]:.0f} MB @ scale {large} "
          f"({ratio:.1f}x the records; growth {growth:.0f} MB, "
          f"slack {args.flat_slack_mb:.0f} MB)")
    if growth > args.flat_slack_mb:
        print(f"FAIL: the crawl RSS delta grew by {growth:.0f} MB "
              f"(> {args.flat_slack_mb:.0f} MB slack) between scales "
              f"{small} and {large} — the pipeline is holding "
              "per-record state; peak memory must stay O(plan + one "
              "shard's buffers) as the world grows", file=sys.stderr)
        return 1
    print("OK: peak RSS is flat across world scales")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help=f"world scale (default {DEFAULT_SCALE})")
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--shards", type=int, default=16)
    parser.add_argument("--rss-ceiling-mb", type=float,
                        default=DEFAULT_CEILING_MB,
                        help="fail if parent peak RSS exceeds this "
                             f"(default {DEFAULT_CEILING_MB} MB, calibrated "
                             f"for --scale {DEFAULT_SCALE})")
    parser.add_argument("--rss-delta-ceiling-mb", type=float,
                        default=DEFAULT_DELTA_CEILING_MB,
                        help="fail if the crawl grows RSS beyond the "
                             "post-world-build baseline by more than this "
                             f"(default {DEFAULT_DELTA_CEILING_MB} MB)")
    parser.add_argument("--vp", action="append", default=None,
                        help="vantage point (repeatable; default: all "
                             "eight, ~72k tasks at the default scale)")
    parser.add_argument("--out-dir", default=None,
                        help="spool directory (default: a temp dir)")
    parser.add_argument("--summary-json", default=None, metavar="PATH",
                        help="also write the summary dict to PATH as JSON "
                             "(used by --flat-scales subprocesses)")
    parser.add_argument("--flat-scales", nargs=2, type=float, default=None,
                        metavar=("SMALL", "LARGE"),
                        help="run the smoke at two scales in fresh "
                             "subprocesses and fail unless the crawl RSS "
                             "delta stays flat between them")
    parser.add_argument("--flat-slack-mb", type=float,
                        default=DEFAULT_FLAT_SLACK_MB,
                        help="allowed crawl-RSS-delta growth between the "
                             "two --flat-scales runs "
                             f"(default {DEFAULT_FLAT_SLACK_MB} MB)")
    args = parser.parse_args(argv)

    if args.flat_scales is not None:
        return run_flat_scales(args)

    out_dir = Path(args.out_dir) if args.out_dir else Path(
        tempfile.mkdtemp(prefix="large-world-smoke-")
    )
    out = out_dir / "crawl.jsonl"

    started = time.perf_counter()
    world = build_world(scale=args.scale, seed=args.seed)
    built = time.perf_counter() - started
    rss_after_world = peak_rss_mb()
    crawler = Crawler(world)
    plan = crawler.plan_detection_crawl(args.vp)
    print(f"world: scale {args.scale}, {len(plan)} tasks "
          f"(built in {built:.1f}s, peak RSS {rss_after_world:.0f} MB)")

    engine = CrawlEngine(
        crawler,
        workers=args.workers,
        shards=args.shards,
        backend="process",
        merge="spool",
        spool_path=out,
        checkpoint_path=f"{out}.checkpoint",
    )
    started = time.perf_counter()
    result = engine.execute(plan)
    crawl_elapsed = time.perf_counter() - started
    peak = peak_rss_mb()

    spooled = sum(1 for _ in iter_records(out))
    summary = {
        "scale": args.scale,
        "tasks": len(plan),
        "records": result.record_count,
        "spooled_records": spooled,
        "failures": len(result.failures),
        "crawl_seconds": round(crawl_elapsed, 1),
        "rss_after_world_mb": round(rss_after_world, 1),
        "peak_rss_mb": round(peak, 1),
        "rss_ceiling_mb": args.rss_ceiling_mb,
        "crawl_rss_delta_mb": round(peak - rss_after_world, 1),
        "rss_delta_ceiling_mb": args.rss_delta_ceiling_mb,
    }
    print(json.dumps(summary, indent=2))
    if args.summary_json:
        Path(args.summary_json).write_text(
            json.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )

    if result.record_count != spooled:
        print(f"FAIL: result reports {result.record_count} records but the "
              f"spool holds {spooled}", file=sys.stderr)
        return 1
    if result.record_count + len(result.failures) != len(plan):
        print("FAIL: records + failures do not cover the plan",
              file=sys.stderr)
        return 1
    if peak > args.rss_ceiling_mb:
        print(f"FAIL: peak RSS {peak:.0f} MB exceeds the "
              f"{args.rss_ceiling_mb:.0f} MB ceiling — the spool merge "
              "is supposed to keep memory at O(one shard's buffer); "
              "something is materialising the record stream",
              file=sys.stderr)
        return 1
    delta = peak - rss_after_world
    if delta > args.rss_delta_ceiling_mb:
        print(f"FAIL: the crawl grew RSS by {delta:.0f} MB "
              f"(> {args.rss_delta_ceiling_mb:.0f} MB) over the "
              "post-world-build baseline — the merge path is buffering "
              "outcomes it should be streaming", file=sys.stderr)
        return 1
    print(f"OK: peak RSS {peak:.0f} MB <= {args.rss_ceiling_mb:.0f} MB "
          f"ceiling, crawl delta {delta:.0f} MB <= "
          f"{args.rss_delta_ceiling_mb:.0f} MB "
          f"({result.record_count} records spool-merged)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
