"""Benchmark fixtures: one full-scale world + one shared crawl.

By default benchmarks run at **paper scale** (45,222 reachable targets,
8 vantage points).  Set ``REPRO_BENCH_SCALE`` to e.g. ``0.05`` for a
quick pass.  Expensive products (the detection crawl, the cookie
measurements) are computed once in session fixtures — individual
benchmarks then time the analysis that regenerates each artefact, and
``bench_pipeline`` times the crawl itself.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentContext
from repro.measure.crawl import Crawler
from repro.webgen import build_world

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2023"))

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_world():
    return build_world(scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_context(bench_world):
    return ExperimentContext(bench_world, crawler=Crawler(bench_world))


@pytest.fixture(scope="session")
def warm_crawl(bench_context):
    """The 8-VP detection crawl, computed once for the whole session."""
    return bench_context.detection_crawl()


def write_artifact(name: str, text: str) -> None:
    """Persist a rendered table/figure for EXPERIMENTS.md."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def run_once(benchmark, fn):
    """Run an expensive benchmark exactly once (no warmup rounds)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
