"""Benchmarks + artefacts: Figures 4–6 (cookie measurements)."""

from conftest import run_once, write_artifact

from repro.analysis.figures import compute_fig2, compute_fig4, compute_fig5, compute_fig6


def test_fig4_cookie_comparison(benchmark, bench_context, warm_crawl):
    """Regular-banner vs cookiewall cookie counts (280 + 280 sites x5)."""

    def produce():
        return compute_fig4(
            bench_context.regular_measurements(),
            bench_context.wall_measurements(),
        )

    comparison = run_once(benchmark, produce)
    text = comparison.render() + (
        f"\nthird-party ratio: {comparison.ratio('third_party'):.1f}x"
        f"\ntracking ratio:    {comparison.ratio('tracking'):.1f}x"
    )
    write_artifact("fig4", text)
    print()
    print(text)
    assert comparison.ratio("third_party") > 3     # paper: 6.4x
    assert comparison.ratio("tracking") > 10       # paper: 42x


def test_fig5_contentpass(benchmark, bench_context, warm_crawl):
    """contentpass accept vs subscription (all partners x5 repeats)."""

    def produce():
        return compute_fig5(
            bench_context.contentpass_accept(),
            bench_context.contentpass_subscription(),
        )

    comparison = run_once(benchmark, produce)
    text = comparison.render() + (
        f"\nmax tracking on accept: {comparison.max_tracking('a'):.1f}"
    )
    write_artifact("fig5", text)
    print()
    print(text)
    _, _, accept_tracking = comparison.medians("a")
    _, _, subscription_tracking = comparison.medians("b")
    assert subscription_tracking == 0.0            # paper: none
    assert accept_tracking > 5                     # paper: median 16
    assert comparison.max_tracking("a") > 25       # paper: some >100


def test_fig6_tracking_vs_price(benchmark, bench_context, warm_crawl):
    figure2 = compute_fig2(bench_context.verified_wall_records_de())

    def produce():
        return compute_fig6(bench_context.wall_measurements(), figure2)

    figure = run_once(benchmark, produce)
    write_artifact("fig6", figure.render())
    print()
    print(figure.render())
    assert abs(figure.correlation) < 0.4           # paper: no correlation
