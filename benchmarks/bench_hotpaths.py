"""Hot-path benchmarks: the indexed visit loop vs the linear baseline.

Four measurements, written cumulatively to
``benchmarks/output/BENCH_hotpaths.json`` so the perf trajectory is
tracked across PRs:

- ``filter_match``   — request decisions against a full-scale list
                       (naive linear scan vs trie/token-indexed engine);
- ``parse_cache``    — parsing a site body vs cloning its cached parse;
- ``selector``       — cosmetic-filter style queries, tree walk vs
                       compiled plans + document index;
- ``end_to_end``     — the §4.5 uBlock-arm measurement (visits/sec)
                       with every hot path off vs on.

The acceptance floors (≥5x filter matching, ≥2x end-to-end uBlock
visits/sec, byte-identical records) are asserted here, so the bench
smoke doubles as a regression gate.  A dedicated small world keeps the
numbers stable regardless of ``REPRO_BENCH_SCALE``.
"""

import json
import time

from conftest import BENCH_SEED, OUTPUT_DIR, write_artifact

from repro import perf
from repro.adblock import FilterEngine, NaiveFilterEngine, annoyances_list, easylist
from repro.adblock.lists import synthetic_full_list
from repro.dom.selector import query_selector_all
from repro.httpkit import Request
from repro.measure.crawl import Crawler
from repro.netsim import VisitorContext
from repro.soup import parse_document
from repro.soup.cache import DocumentCache
from repro.vantage import VANTAGE_POINTS
from repro.webgen import build_world

_WORLD_SCALE = 0.05
_FULL_LIST_RULES = 20000
_UBLOCK_DOMAINS = 12
_UBLOCK_ITERATIONS = 5

_JSON_PATH = OUTPUT_DIR / "BENCH_hotpaths.json"


def _update_json(section: str, payload: dict) -> None:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    data = {}
    if _JSON_PATH.exists():
        data = json.loads(_JSON_PATH.read_text(encoding="utf-8"))
    data.setdefault("meta", {
        "world_scale": _WORLD_SCALE,
        "seed": BENCH_SEED,
        "full_list_rules": _FULL_LIST_RULES,
    })
    data[section] = payload
    _JSON_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _full_lists():
    return [easylist(), annoyances_list(),
            synthetic_full_list(_FULL_LIST_RULES, seed=BENCH_SEED)]


def _request_stream(n: int = 400):
    hosts = (
        "doubleclick.net", "cdn.opencmp.net", "site.de", "sub.trackmax.com",
        "news.example.co.uk", "assets.boerse.de", "cdn.usercentrics.eu",
    )
    types = ("script", "image", "xhr", "stylesheet")
    return [
        Request(
            url=f"https://{hosts[i % len(hosts)]}/path{i}/pixel?id={i}",
            initiator="https://site.de/",
            resource_type=types[i % len(types)],
        )
        for i in range(n)
    ]


def test_filter_match_speedup(benchmark):
    """Decision throughput at full-list size: naive vs indexed."""
    lists = _full_lists()
    requests = _request_stream()

    def build_and_run(engine_cls):
        engine = engine_cls()
        engine.add_lists(lists)
        engine.should_block(requests[0])  # compile / warm
        started = time.perf_counter()
        decisions = [engine.should_block(r) for r in requests]
        return time.perf_counter() - started, decisions

    naive_elapsed, naive_decisions = build_and_run(NaiveFilterEngine)

    def indexed_run():
        return build_and_run(FilterEngine)

    indexed_elapsed, indexed_decisions = benchmark.pedantic(
        indexed_run, rounds=1, iterations=1, warmup_rounds=0
    )
    assert indexed_decisions == naive_decisions
    speedup = naive_elapsed / indexed_elapsed
    _update_json("filter_match", {
        "requests": len(requests),
        "filters": sum(len(t.splitlines()) for t in lists),
        "naive_rps": round(len(requests) / naive_elapsed),
        "indexed_rps": round(len(requests) / indexed_elapsed),
        "speedup": round(speedup, 2),
    })
    # The ISSUE's acceptance floor.
    assert speedup >= 5.0


def test_parse_vs_clone(benchmark, bench_world):
    """Re-tokenizing a site body vs cloning its cached parse."""
    domain = bench_world.crawl_targets[0]
    request = Request(url=f"https://{domain}/", resource_type="document")
    visitor = VisitorContext(vp=VANTAGE_POINTS["DE"], visit_id=1)
    body = bench_world.network.fetch(request, visitor).body
    rounds = 200

    started = time.perf_counter()
    for _ in range(rounds):
        parse_document(body, url=f"https://{domain}/")
    parse_elapsed = time.perf_counter() - started

    cache = DocumentCache()
    cache.parse(body, f"https://{domain}/")  # prime

    def clone_run():
        started = time.perf_counter()
        for _ in range(rounds):
            cache.parse(body, f"https://{domain}/")
        return time.perf_counter() - started

    clone_elapsed = benchmark.pedantic(
        clone_run, rounds=1, iterations=1, warmup_rounds=0
    )
    _update_json("parse_cache", {
        "body_bytes": len(body),
        "rounds": rounds,
        "parse_ms_per_doc": round(parse_elapsed / rounds * 1000, 4),
        "clone_ms_per_doc": round(clone_elapsed / rounds * 1000, 4),
        "speedup": round(parse_elapsed / clone_elapsed, 2),
    })
    assert cache.hits == rounds


def test_selector_query_speedup(benchmark, bench_world):
    """Cosmetic-filter style selector queries: walk vs document index."""
    domain = bench_world.crawl_targets[0]
    request = Request(url=f"https://{domain}/", resource_type="document")
    visitor = VisitorContext(vp=VANTAGE_POINTS["DE"], visit_id=1)
    document = parse_document(
        bench_world.network.fetch(request, visitor).body,
        url=f"https://{domain}/",
    )
    selectors = [
        ".ad-banner-top", "div[data-ad-slot]", ".cmp-overlay-backdrop",
        'div[id^="sp_message_container"]', ".cookie-notice-slide-in",
        "footer a", "main > article p", "#nonexistent",
    ]
    rounds = 300

    with perf.disabled("selector_index"):
        walk_results = [query_selector_all(document, s) for s in selectors]
        started = time.perf_counter()
        for _ in range(rounds):
            for selector in selectors:
                query_selector_all(document, selector)
        walk_elapsed = time.perf_counter() - started

    assert [query_selector_all(document, s) for s in selectors] == walk_results

    def indexed_run():
        started = time.perf_counter()
        for _ in range(rounds):
            for selector in selectors:
                query_selector_all(document, selector)
        return time.perf_counter() - started

    indexed_elapsed = benchmark.pedantic(
        indexed_run, rounds=1, iterations=1, warmup_rounds=0
    )
    queries = rounds * len(selectors)
    _update_json("selector", {
        "queries": queries,
        "walk_qps": round(queries / walk_elapsed),
        "indexed_qps": round(queries / indexed_elapsed),
        "speedup": round(walk_elapsed / indexed_elapsed, 2),
    })


def test_end_to_end_ublock_arm(benchmark):
    """The §4.5 uBlock-arm measurement at full-list size, off vs on.

    Real uBlock runs EasyList + Annoyances at tens of thousands of
    rules; the embedded lists only cover the synthetic third parties,
    so the arm is benchmarked with a deterministic full-scale list
    loaded on top — the regime the ISSUE's 2x floor refers to.
    """
    world = build_world(scale=_WORLD_SCALE, seed=BENCH_SEED)
    crawler = Crawler(
        world,
        ublock_lists=[synthetic_full_list(_FULL_LIST_RULES, seed=BENCH_SEED)],
    )
    walls = sorted(world.wall_domains)[:_UBLOCK_DOMAINS]
    visits = len(walls) * _UBLOCK_ITERATIONS

    def ublock_arm():
        return [
            crawler.measure_ublock("DE", d, iterations=_UBLOCK_ITERATIONS)
            for d in walls
        ]

    # Warm the shared list-parse cache so neither leg times list parsing.
    ublock_arm()

    with perf.disabled():
        started = time.perf_counter()
        naive_records = ublock_arm()
        naive_elapsed = time.perf_counter() - started

    indexed_records = benchmark.pedantic(
        ublock_arm, rounds=1, iterations=1, warmup_rounds=0
    )
    indexed_elapsed = benchmark.stats.stats.total

    assert [r.to_dict() for r in indexed_records] == [
        r.to_dict() for r in naive_records
    ]
    speedup = naive_elapsed / indexed_elapsed
    naive_rate = visits / naive_elapsed
    indexed_rate = visits / indexed_elapsed
    _update_json("end_to_end", {
        "wall_domains": len(walls),
        "iterations": _UBLOCK_ITERATIONS,
        "visits": visits,
        "naive_visits_per_sec": round(naive_rate, 1),
        "indexed_visits_per_sec": round(indexed_rate, 1),
        "speedup": round(speedup, 2),
    })
    write_artifact(
        "hotpaths_summary",
        f"uBlock arm at full-list size ({_FULL_LIST_RULES} extra rules)\n"
        f"hot paths off: {naive_rate:.1f} visits/sec\n"
        f"hot paths on:  {indexed_rate:.1f} visits/sec\n"
        f"speedup:       {speedup:.2f}x (records byte-identical)",
    )
    # The ISSUE's acceptance floor.
    assert speedup >= 2.0
