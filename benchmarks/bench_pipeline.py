"""Benchmarks for the measurement pipeline itself (crawl throughput)."""

from conftest import BENCH_SCALE, BENCH_SEED, run_once, write_artifact

from repro.bannerclick import BannerClick
from repro.measure.crawl import Crawler
from repro.webgen import build_world


def test_world_build(benchmark):
    """Time the full synthetic-web construction."""
    world = run_once(benchmark, lambda: build_world(scale=BENCH_SCALE, seed=BENCH_SEED))
    assert len(world.crawl_targets) > 0


def test_visit_and_detect_throughput(benchmark, bench_world):
    """Detection-visit throughput over a 200-site sample (hot path)."""
    crawler = Crawler(bench_world)
    sample = bench_world.crawl_targets[:200]

    def sweep():
        return [crawler.visit("DE", domain) for domain in sample]

    records = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    assert len(records) == len(sample)


def test_full_detection_crawl(benchmark, bench_context):
    """The 8-VP crawl of the whole target union (the paper's §3 crawl).

    The shared fixture caches it, so this times the already-computed
    product on re-runs; on the first run it performs the real crawl.
    """
    crawl = run_once(benchmark, bench_context.detection_crawl)
    write_artifact(
        "crawl_summary",
        f"records: {len(crawl)}\n"
        f"unique cookiewall domains: {len(crawl.cookiewall_domains())}",
    )
    assert len(crawl.cookiewall_domains()) > 0
