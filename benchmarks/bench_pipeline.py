"""Benchmarks for the measurement pipeline itself (crawl throughput)."""

import json
import os
import time

from conftest import BENCH_SCALE, BENCH_SEED, OUTPUT_DIR, run_once, write_artifact

from repro.measure.crawl import Crawler
from repro.measure.engine import CrawlEngine, FaultInjectingExecutor, shard_of
from repro.webgen import build_world

#: Simulated per-request RTT for the parallel-engine benchmark.  Real
#: crawls are network-bound; the netsim is compute-bound unless this is
#: set, so the serial-vs-parallel comparison models the regime where a
#: parallel crawler actually earns its keep.
_BENCH_LATENCY = 0.002
_PARALLEL_WORKERS = 4
_SAMPLE_SIZE = 200

#: CI gate: on a multi-core box the process executor must beat the
#: thread executor by at least this factor on the compute-bound world
#: (threads serialise on the GIL there; processes do not).
_PROCESS_SPEEDUP_FLOOR = 1.1
#: Tasks in the compute-bound executor benchmark — enough that the
#: process pool's startup cost is noise against the crawl itself.
_EXECUTOR_SAMPLE = 1000


def test_world_build(benchmark):
    """Time the full synthetic-web construction."""
    world = run_once(benchmark, lambda: build_world(scale=BENCH_SCALE, seed=BENCH_SEED))
    assert len(world.crawl_targets) > 0


def test_visit_and_detect_throughput(benchmark, bench_world):
    """Detection-visit throughput over a 200-site sample (hot path)."""
    crawler = Crawler(bench_world)
    sample = bench_world.crawl_targets[:200]

    def sweep():
        return [crawler.visit("DE", domain) for domain in sample]

    records = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    assert len(records) == len(sample)


def test_full_detection_crawl(benchmark, bench_context):
    """The 8-VP crawl of the whole target union (the paper's §3 crawl).

    The shared fixture caches it, so this times the already-computed
    product on re-runs; on the first run it performs the real crawl.
    """
    crawl = run_once(benchmark, bench_context.detection_crawl)
    write_artifact(
        "crawl_summary",
        f"records: {len(crawl)}\n"
        f"unique cookiewall domains: {len(crawl.cookiewall_domains())}",
    )
    assert len(crawl.cookiewall_domains()) > 0


def test_parallel_crawl_speedup(benchmark):
    """Serial vs sharded-parallel engine throughput (visits/sec).

    Uses a small dedicated world with simulated network latency (the
    network-bound regime of real crawls) so the comparison is stable
    regardless of ``REPRO_BENCH_SCALE``.  The artifact records both
    rates and the speedup so future PRs can track regressions.
    """
    world = build_world(scale=0.05, seed=BENCH_SEED)
    world.network.latency = _BENCH_LATENCY
    # Wall-clock benchmark: pay the latency in real sleeps (the engine
    # default is the deterministic virtual clock, which never blocks).
    world.network.latency_mode = "real"
    crawler = Crawler(world)
    sample = world.crawl_targets[:_SAMPLE_SIZE]

    started = time.perf_counter()
    serial_records = crawler.crawl_vp("DE", sample, workers=1)
    serial_elapsed = time.perf_counter() - started
    serial_rate = len(serial_records) / serial_elapsed

    def parallel_sweep():
        return crawler.crawl_vp("DE", sample, workers=_PARALLEL_WORKERS)

    parallel_records = benchmark.pedantic(
        parallel_sweep, rounds=1, iterations=1, warmup_rounds=0
    )
    parallel_elapsed = benchmark.stats.stats.total
    parallel_rate = len(parallel_records) / parallel_elapsed
    world.network.latency = 0.0

    speedup = parallel_rate / serial_rate
    write_artifact(
        "parallel_speedup",
        f"sample: {len(sample)} sites, latency {_BENCH_LATENCY * 1000:.0f}ms/request\n"
        f"serial (workers=1): {serial_rate:.1f} visits/sec\n"
        f"parallel (workers={_PARALLEL_WORKERS}): {parallel_rate:.1f} visits/sec\n"
        f"speedup: {speedup:.2f}x",
    )
    assert [r.to_dict() for r in parallel_records] == [
        r.to_dict() for r in serial_records
    ]
    # The 2x floor is this PR's acceptance criterion; the 2ms-latency
    # regime leaves ~1.7x of headroom over it on a single busy core.
    assert speedup >= 2.0


def test_executor_backend_speedup(benchmark):
    """Thread vs process executor on a **compute-bound** world.

    The netsim at zero latency is pure Python compute, so thread
    workers serialise on the GIL while process workers genuinely
    parallelise — the regime PR 4's indexed hot paths left the
    pipeline in.  Writes ``benchmarks/output/BENCH_executors.json``
    (serial/thread/process tasks-per-sec, the process-vs-thread
    ratio, and the gated floor) and asserts the floor whenever the
    machine has the cores to parallelise at all; the records must be
    identical across backends regardless.
    """
    world = build_world(scale=0.05, seed=BENCH_SEED)
    assert world.network.latency == 0.0  # compute-bound by construction
    crawler = Crawler(world)
    sample = world.crawl_targets[:_EXECUTOR_SAMPLE]
    plan = crawler.plan_detection_crawl(["DE"], sample)

    # Warm the module-wide parse/filter caches once so the serial leg
    # (which runs first) is not unfairly charged for populating them;
    # forked process workers inherit the warm caches just like threads.
    CrawlEngine(crawler).execute(plan)

    def timed(backend, workers):
        engine = CrawlEngine(
            crawler, workers=workers, backend=backend,
            shards=_PARALLEL_WORKERS * 2,
        )
        started = time.perf_counter()
        result = engine.execute(plan)
        elapsed = time.perf_counter() - started
        return result, len(plan) / elapsed

    serial_result, serial_rate = timed("serial", 1)
    thread_result, thread_rate = timed("thread", _PARALLEL_WORKERS)

    def process_run():
        return timed("process", _PARALLEL_WORKERS)

    process_result, process_rate = benchmark.pedantic(
        process_run, rounds=1, iterations=1, warmup_rounds=0
    )

    # Determinism across backends (detection records are id-agnostic,
    # so the serial run matches the per-task-id parallel ones too).
    baseline = [r.to_dict() for r in serial_result.records]
    assert [r.to_dict() for r in thread_result.records] == baseline
    assert [r.to_dict() for r in process_result.records] == baseline

    speedup = process_rate / thread_rate
    cpus = os.cpu_count() or 1
    payload = {
        "meta": {
            "world_scale": 0.05,
            "seed": BENCH_SEED,
            "tasks": len(plan),
            "workers": _PARALLEL_WORKERS,
            "cpus": cpus,
        },
        "compute_bound": {
            "serial_tasks_per_sec": round(serial_rate, 1),
            "thread_tasks_per_sec": round(thread_rate, 1),
            "process_tasks_per_sec": round(process_rate, 1),
            "process_vs_thread": round(speedup, 3),
            "process_vs_serial": round(process_rate / serial_rate, 3),
            "floor": _PROCESS_SPEEDUP_FLOOR,
            "floor_enforced": cpus >= 2,
        },
    }
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "BENCH_executors.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    write_artifact(
        "executor_speedup",
        f"compute-bound sample: {len(plan)} tasks, "
        f"{_PARALLEL_WORKERS} workers, {cpus} cpus\n"
        f"serial:  {serial_rate:.1f} tasks/sec\n"
        f"thread:  {thread_rate:.1f} tasks/sec\n"
        f"process: {process_rate:.1f} tasks/sec\n"
        f"process vs thread: {speedup:.2f}x (floor "
        f"{_PROCESS_SPEEDUP_FLOOR}x, "
        f"{'enforced' if cpus >= 2 else 'not enforced: single cpu'})",
    )
    # A single-CPU box cannot parallelise anything — record the
    # numbers but only gate where the comparison is physically
    # meaningful (CI runners are multi-core).
    if cpus >= 2:
        assert speedup >= _PROCESS_SPEEDUP_FLOOR, (
            f"process executor no faster than threads on a compute-bound "
            f"world: {speedup:.2f}x < {_PROCESS_SPEEDUP_FLOOR}x"
        )


def test_checkpoint_resume_speedup(benchmark, tmp_path):
    """Crash at ~half the crawl, resume, and time the second leg.

    A fault-injecting executor kills half the shards after the other
    half checkpointed; the resumed run replays those outcomes instead
    of re-crawling, so in the latency-bound regime the second leg
    should take roughly half the uninterrupted run's time.  The
    artifact tracks the replay fraction and the resume speedup.
    """
    world = build_world(scale=0.05, seed=BENCH_SEED)
    world.network.latency = _BENCH_LATENCY
    # Wall-clock benchmark: real sleeps, as in test_parallel_crawl_speedup.
    world.network.latency_mode = "real"
    crawler = Crawler(world)
    sample = world.crawl_targets[:_SAMPLE_SIZE]
    plan = crawler.plan_detection_crawl(["DE"], sample)
    shards = _PARALLEL_WORKERS * 2
    victims = {s for s in range(shards) if s % 2}
    out = tmp_path / "crawl.jsonl"
    checkpoint = tmp_path / "crawl.jsonl.checkpoint"

    # Reference: the uninterrupted checkpointed run.
    started = time.perf_counter()
    CrawlEngine(
        crawler, workers=_PARALLEL_WORKERS, shards=shards,
        spool_path=out, checkpoint_path=checkpoint,
    ).execute(plan)
    full_elapsed = time.perf_counter() - started
    full_bytes = out.read_bytes()

    # Crash at ~half: the surviving shards' outcomes stay checkpointed.
    crashed = CrawlEngine(
        crawler, workers=_PARALLEL_WORKERS, shards=shards,
        spool_path=out, checkpoint_path=checkpoint,
        executor=FaultInjectingExecutor(_PARALLEL_WORKERS, victims),
    )
    try:
        crashed.execute(plan)
        raise AssertionError("fault injection did not fire")
    except RuntimeError:
        pass

    def resume_run():
        return CrawlEngine(
            crawler, workers=_PARALLEL_WORKERS, shards=shards,
            spool_path=out, checkpoint_path=checkpoint, resume=True,
        ).execute(plan)

    result = benchmark.pedantic(resume_run, rounds=1, iterations=1,
                                warmup_rounds=0)
    resume_elapsed = benchmark.stats.stats.total
    world.network.latency = 0.0

    replayed = result.resumed / len(plan)
    speedup = full_elapsed / resume_elapsed if resume_elapsed else 0.0
    write_artifact(
        "resume_speedup",
        f"sample: {len(sample)} sites, latency "
        f"{_BENCH_LATENCY * 1000:.0f}ms/request, "
        f"{shards} shards ({len(victims)} killed mid-run)\n"
        f"uninterrupted run: {full_elapsed:.2f}s\n"
        f"resumed run:       {resume_elapsed:.2f}s "
        f"({result.resumed}/{len(plan)} outcomes replayed, "
        f"{replayed * 100:.0f}%)\n"
        f"resume speedup:    {speedup:.2f}x",
    )
    # The resumed output is byte-identical to the uninterrupted run's,
    # and a meaningful share of the plan was replayed, not re-crawled.
    assert out.read_bytes() == full_bytes
    assert result.resumed > 0
    expected = sum(
        1 for domain in sample if shard_of(domain, shards) not in victims
    )
    assert result.resumed == expected
