"""Benchmarks for the measurement pipeline itself (crawl throughput)."""

import time

from conftest import BENCH_SCALE, BENCH_SEED, run_once, write_artifact

from repro.bannerclick import BannerClick
from repro.measure.crawl import Crawler
from repro.webgen import build_world

#: Simulated per-request RTT for the parallel-engine benchmark.  Real
#: crawls are network-bound; the netsim is compute-bound unless this is
#: set, so the serial-vs-parallel comparison models the regime where a
#: parallel crawler actually earns its keep.
_BENCH_LATENCY = 0.002
_PARALLEL_WORKERS = 4
_SAMPLE_SIZE = 200


def test_world_build(benchmark):
    """Time the full synthetic-web construction."""
    world = run_once(benchmark, lambda: build_world(scale=BENCH_SCALE, seed=BENCH_SEED))
    assert len(world.crawl_targets) > 0


def test_visit_and_detect_throughput(benchmark, bench_world):
    """Detection-visit throughput over a 200-site sample (hot path)."""
    crawler = Crawler(bench_world)
    sample = bench_world.crawl_targets[:200]

    def sweep():
        return [crawler.visit("DE", domain) for domain in sample]

    records = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    assert len(records) == len(sample)


def test_full_detection_crawl(benchmark, bench_context):
    """The 8-VP crawl of the whole target union (the paper's §3 crawl).

    The shared fixture caches it, so this times the already-computed
    product on re-runs; on the first run it performs the real crawl.
    """
    crawl = run_once(benchmark, bench_context.detection_crawl)
    write_artifact(
        "crawl_summary",
        f"records: {len(crawl)}\n"
        f"unique cookiewall domains: {len(crawl.cookiewall_domains())}",
    )
    assert len(crawl.cookiewall_domains()) > 0


def test_parallel_crawl_speedup(benchmark):
    """Serial vs sharded-parallel engine throughput (visits/sec).

    Uses a small dedicated world with simulated network latency (the
    network-bound regime of real crawls) so the comparison is stable
    regardless of ``REPRO_BENCH_SCALE``.  The artifact records both
    rates and the speedup so future PRs can track regressions.
    """
    world = build_world(scale=0.05, seed=BENCH_SEED)
    world.network.latency = _BENCH_LATENCY
    crawler = Crawler(world)
    sample = world.crawl_targets[:_SAMPLE_SIZE]

    started = time.perf_counter()
    serial_records = crawler.crawl_vp("DE", sample, workers=1)
    serial_elapsed = time.perf_counter() - started
    serial_rate = len(serial_records) / serial_elapsed

    def parallel_sweep():
        return crawler.crawl_vp("DE", sample, workers=_PARALLEL_WORKERS)

    parallel_records = benchmark.pedantic(
        parallel_sweep, rounds=1, iterations=1, warmup_rounds=0
    )
    parallel_elapsed = benchmark.stats.stats.total
    parallel_rate = len(parallel_records) / parallel_elapsed
    world.network.latency = 0.0

    speedup = parallel_rate / serial_rate
    write_artifact(
        "parallel_speedup",
        f"sample: {len(sample)} sites, latency {_BENCH_LATENCY * 1000:.0f}ms/request\n"
        f"serial (workers=1): {serial_rate:.1f} visits/sec\n"
        f"parallel (workers={_PARALLEL_WORKERS}): {parallel_rate:.1f} visits/sec\n"
        f"speedup: {speedup:.2f}x",
    )
    assert [r.to_dict() for r in parallel_records] == [
        r.to_dict() for r in serial_records
    ]
    # The 2x floor is this PR's acceptance criterion; the 2ms-latency
    # regime leaves ~1.7x of headroom over it on a single busy core.
    assert speedup >= 2.0
