"""Chaos-plane benchmarks: idle overhead + recovery throughput.

Two gates, both written to ``benchmarks/output/BENCH_chaos.json`` for
the CI floor check:

* **Idle overhead** — a seeded chaos spec with every rate at zero
  installs the plane but never injects; ``ChaosEngine.idle``
  short-circuits per request, so the crawl must cost within a few
  percent of the chaos-free run.  Both sides run the thread backend
  (the per-task visit-id regime chaos forces anyway), so the ratio
  isolates the plane itself.
* **Recovery throughput** — visits/sec under the pinned recoverable
  regime with a generous retry budget: every fault retries into a
  clean record (the differential oracle's happy half), and the floor
  keeps the retry/backoff machinery from quietly becoming the
  bottleneck.
"""

import json
import os
import time

from conftest import BENCH_SEED, OUTPUT_DIR, run_once, write_artifact

from repro.measure.crawl import Crawler
from repro.measure.engine import CrawlEngine, RetryPolicy
from repro.resilience.chaos import ChaosSpec
from repro.webgen import build_world

#: CI gate: idle-chaos crawl time over chaos-free crawl time.
_IDLE_RATIO_CEILING = 1.05
#: CI gate: visits/sec under the recoverable regime (local runs
#: sustain hundreds — the floor leaves ~10x for slow runners).
_RECOVERY_FLOOR_VISITS_PER_SEC = 30

_WORKERS = 2
_SHARDS = 8
_SAMPLE_SIZE = 160
_ROUNDS = 3

#: The pinned recoverable regime (mirrors tests/test_chaos.py).
_RECOVERABLE = ChaosSpec(
    seed=99, timeout_rate=0.05, dns_rate=0.03, disconnect_rate=0.03,
    truncate_rate=0.02,
)
_IDLE = ChaosSpec(seed=99)


def _update_payload(section: str, data: dict) -> None:
    """Merge one section into BENCH_chaos.json (tests run in file
    order under ``-x``; the CI gate reads the file after both)."""
    out = OUTPUT_DIR / "BENCH_chaos.json"
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload[section] = data
    payload.setdefault("meta", {})["cpus"] = os.cpu_count() or 1
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def _bench_world():
    world = build_world(scale=0.05, seed=BENCH_SEED)
    return world, Crawler(world)


def _timed_run(crawler, sample, chaos=None, retry=None):
    plan = crawler.plan_detection_crawl(["DE"], sample)
    if chaos is not None:
        plan.context["chaos"] = chaos.to_context()
    engine = CrawlEngine(
        crawler, workers=_WORKERS, shards=_SHARDS, backend="thread",
        retry=retry or RetryPolicy(),
    )
    started = time.perf_counter()
    result = engine.execute(plan)
    elapsed = time.perf_counter() - started
    assert result.record_count == len(plan)
    return result, elapsed


def test_idle_chaos_overhead():
    """An installed-but-quiet chaos plane must cost ~nothing.

    Best-of-N timing on both sides (plus one untimed warmup) keeps the
    ratio meaningful on noisy CI runners: the idle path is a single
    attribute check per request, so the true delta is ~0."""
    world, crawler = _bench_world()
    sample = world.crawl_targets[:_SAMPLE_SIZE]
    _timed_run(crawler, sample)  # warmup: caches, lazy imports

    baseline = min(
        _timed_run(crawler, sample)[1] for _ in range(_ROUNDS)
    )
    idle = min(
        _timed_run(crawler, sample, chaos=_IDLE)[1] for _ in range(_ROUNDS)
    )
    ratio = idle / baseline if baseline else 0.0
    _update_payload("idle", {
        "baseline_sec": round(baseline, 4),
        "idle_sec": round(idle, 4),
        "ratio": round(ratio, 4),
        "ratio_ceiling": _IDLE_RATIO_CEILING,
        "visits": _SAMPLE_SIZE,
    })
    write_artifact(
        "chaos_idle_overhead",
        f"sample: {_SAMPLE_SIZE} visits, workers={_WORKERS}\n"
        f"chaos-free: {baseline:.3f}s\n"
        f"idle chaos plane: {idle:.3f}s\n"
        f"overhead: {ratio:.3f}x (ceiling {_IDLE_RATIO_CEILING}x)",
    )
    assert ratio <= _IDLE_RATIO_CEILING


def test_recovery_throughput(benchmark):
    """Visits/sec while the recoverable regime is actively faulting."""
    world, crawler = _bench_world()
    sample = world.crawl_targets[:_SAMPLE_SIZE]
    retry = RetryPolicy(max_attempts=8)

    def chaos_sweep():
        return _timed_run(
            crawler, sample, chaos=_RECOVERABLE, retry=retry
        )[0]

    result = run_once(benchmark, chaos_sweep)
    elapsed = benchmark.stats.stats.total
    rate = len(sample) / elapsed if elapsed else 0.0
    # The oracle's happy half: everything recovered, nothing degraded.
    assert not result.failures
    # And faults really flowed through the retry layer (visible as
    # multi-attempt outcomes), or this measures nothing.
    retried = sum(1 for o in result.outcomes if o.attempts > 1)
    assert retried > 0, "pinned recoverable regime injected no faults"
    _update_payload("recovery", {
        "visits": _SAMPLE_SIZE,
        "retried_tasks": retried,
        "seconds": round(elapsed, 4),
        "visits_per_sec": round(rate, 1),
        "floor_visits_per_sec": _RECOVERY_FLOOR_VISITS_PER_SEC,
    })
    write_artifact(
        "chaos_recovery_throughput",
        f"sample: {_SAMPLE_SIZE} visits, {retried} retried tasks\n"
        f"throughput under recoverable chaos: {rate:.1f} visits/sec\n"
        f"floor: {_RECOVERY_FLOOR_VISITS_PER_SEC} visits/sec",
    )
    assert rate >= _RECOVERY_FLOOR_VISITS_PER_SEC
