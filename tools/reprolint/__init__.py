"""reprolint: repo-specific static analysis enforcing the reproducibility contract.

The repo's headline claim — byte-identical records across executor
backends, worker counts, kill/resume, and interpreter hash seeds — is
defended dynamically by the differential test matrices.  reprolint
enforces the same invariants *statically*, so a violation is caught at
lint time instead of after an expensive crawl matrix:

- **determinism** (``salted-hash``, ``unseeded-entropy``,
  ``set-iteration``): record-producing modules must not derive values
  from the per-process-salted ``hash()``, unseeded entropy sources, or
  bare-``set`` iteration order — seeds flow through
  :func:`repro.rng.derive_seed`.
- **streaming discipline** (``materialized-records``): the analysis
  layer and the merge/reconcile paths stay single-pass; no
  ``load_records`` / ``list(iter_records(...))`` / ``.readlines()`` /
  whole-file ``json.load``.
- **pickle-safety** (``bundle-pickle-safety``): every type reachable
  from the process-executor shard bundle stays free of lambdas, local
  functions/classes, locks, and open file handles.
- **locking discipline** (``unlocked-mutation``): state mutated under a
  lock somewhere must be mutated under that lock everywhere.

Run ``python -m tools.reprolint --list-rules`` for the registry and
``--explain RULE`` for the full rationale of one rule.
"""

from tools.reprolint.core import (  # noqa: F401
    Baseline,
    BaselineError,
    Finding,
    SourceFile,
    lint_sources,
    load_sources,
)
from tools.reprolint.rules import all_rules  # noqa: F401
