"""The reprolint command line: ``python -m tools.reprolint [paths...]``."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from tools.reprolint.core import (
    REPO_ROOT,
    Baseline,
    BaselineError,
    lint_sources,
    load_sources,
)
from tools.reprolint.rules import all_rules, rules_by_name

#: The CI gate: everything that produces records, tooling included.
DEFAULT_PATHS = ("src", "tools", "benchmarks")

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description=(
            "Repo-specific static analysis enforcing the reproducibility "
            "contract: determinism, streaming discipline, pickle-safety, "
            "and locking discipline."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="finding output format (github emits workflow annotations)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=str(DEFAULT_BASELINE),
        help="baseline file of grandfathered findings",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "write all current findings to the baseline file (justify each "
            "entry's 'reason' before committing) instead of failing"
        ),
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print the full rationale for one rule and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    registry = rules_by_name()

    if args.list_rules:
        width = max(len(name) for name in registry)
        for name in sorted(registry):
            print(f"{name:<{width}}  {registry[name].summary}")
        return 0

    if args.explain:
        rule = registry.get(args.explain)
        if rule is None:
            print(
                f"unknown rule {args.explain!r}; known: "
                f"{', '.join(sorted(registry))}",
                file=sys.stderr,
            )
            return 2
        print(f"{rule.name}: {rule.summary}\n")
        print(rule.explanation.rstrip())
        return 0

    if args.select:
        names = [name.strip() for name in args.select.split(",") if name.strip()]
        unknown = [name for name in names if name not in registry]
        if unknown:
            print(
                f"unknown rule(s): {', '.join(unknown)}; known: "
                f"{', '.join(sorted(registry))}",
                file=sys.stderr,
            )
            return 2
        rules = [registry[name] for name in names]
    else:
        rules = all_rules()

    try:
        sources = load_sources([Path(p) for p in args.paths], root=REPO_ROOT)
    except (OSError, SyntaxError) as exc:
        print(f"reprolint: cannot load sources: {exc}", file=sys.stderr)
        return 2
    if not sources:
        print("reprolint: no python files under the given paths", file=sys.stderr)
        return 2

    baseline = None
    baseline_path = Path(args.baseline)
    if args.write_baseline:
        findings = lint_sources(sources, rules, baseline=None)
        payload = Baseline.serialize(findings)
        baseline_path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        print(
            f"wrote {len(payload['entries'])} baseline entr"
            f"{'y' if len(payload['entries']) == 1 else 'ies'} to "
            f"{baseline_path} — fill in each 'reason' before committing"
        )
        return 0
    if not args.no_baseline and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"reprolint: bad baseline: {exc}", file=sys.stderr)
            return 2

    findings = lint_sources(sources, rules, baseline=baseline)
    for finding in findings:
        if args.format == "github":
            print(finding.render_github())
        else:
            print(finding.render())
    if baseline is not None:
        for entry in baseline.stale_entries():
            print(
                f"warning: stale baseline entry no longer matches anything: "
                f"[{entry['rule']}] {entry['path']}: {entry['snippet']!r}",
                file=sys.stderr,
            )
    if findings:
        noun = "finding" if len(findings) == 1 else "findings"
        print(
            f"reprolint: {len(findings)} {noun} "
            f"({len(sources)} files, {len(rules)} rules)",
            file=sys.stderr,
        )
        return 1
    print(
        f"reprolint: OK ({len(sources)} files, {len(rules)} rules, "
        f"{len(baseline.entries) if baseline else 0} baselined)"
    )
    return 0
