"""Determinism rules: record values must be hash-seed and entropy free.

The byte-identity contract (same records across backends, worker
counts, kill/resume, and ``PYTHONHASHSEED``) only holds if every value
that can reach a record is derived deterministically.  These rules
police the record-producing packages — ``measure/``, ``webgen/``,
``vantage/``, ``smp/``, ``consent/`` — plus ``benchmarks/`` and
``tools/`` (whose outputs gate CI floors and must be stable too).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from tools.reprolint.core import Finding, Rule, SourceFile

#: Path prefixes whose modules produce (or directly feed) records.
RECORD_SCOPES: Tuple[str, ...] = (
    "src/repro/measure/",
    "src/repro/webgen/",
    "src/repro/vantage/",
    "src/repro/smp/",
    "src/repro/consent/",
    "benchmarks/",
    "tools/",
)


def in_record_scope(rel: str) -> bool:
    return rel.startswith(RECORD_SCOPES)


class _ImportTable(ast.NodeVisitor):
    """Map local names to the modules / members they were imported as."""

    def __init__(self) -> None:
        self.modules: Dict[str, str] = {}  # local name -> module path
        self.members: Dict[str, Tuple[str, str]] = {}  # local -> (module, member)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.modules[alias.asname or alias.name.split(".")[0]] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None:
            return
        for alias in node.names:
            self.members[alias.asname or alias.name] = (node.module, alias.name)


def _imports(src: SourceFile) -> _ImportTable:
    table = _ImportTable()
    table.visit(src.tree)
    return table


def _call_target(
    node: ast.Call, table: _ImportTable
) -> Optional[Tuple[str, str]]:
    """Resolve a call to ``(module, member)`` via the import table."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        module = table.modules.get(func.value.id)
        if module is not None:
            return (module, func.attr)
        member = table.members.get(func.value.id)
        if member is not None:  # e.g. ``from datetime import datetime``
            return (f"{member[0]}.{member[1]}", func.attr)
    elif isinstance(func, ast.Name):
        member = table.members.get(func.id)
        if member is not None:
            return member
    return None


class SaltedHashRule(Rule):
    name = "salted-hash"
    summary = "builtin hash() is salted per process; derive values stably"
    explanation = """\
The builtin ``hash()`` is salted per interpreter process (PYTHONHASHSEED),
so any value derived from it differs across processes, across the
process-executor's workers, and across reruns.  PR 7 fixed exactly this
in webgen's banner-variant derivation; the rule stops the class.

Use ``repro.rng.derive_seed`` (SHA-256, stable everywhere) for seed
derivation, or ``zlib.crc32`` for cheap bucketing the way engine
sharding does.  Defining ``__hash__`` on your own classes is fine —
the salt only matters once a hash value leaks into output.
"""

    def applies_to(self, rel: str) -> bool:
        return in_record_scope(rel)

    def check(self, src: SourceFile) -> Iterator[Finding]:
        in_hash_methods: Set[int] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.FunctionDef) and node.name == "__hash__":
                for sub in ast.walk(node):
                    in_hash_methods.add(id(sub))
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
                and id(node) not in in_hash_methods
            ):
                yield src.finding(
                    self.name,
                    node,
                    "hash() is salted per process; derive this value with "
                    "repro.rng.derive_seed (or zlib.crc32 for bucketing)",
                )


#: ``random``-module functions that draw from the unseeded global RNG.
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "getrandbits", "randbytes", "seed",
    "vonmisesvariate", "paretovariate", "weibullvariate", "lognormvariate",
}

#: Wall-clock constructors (durations via perf_counter/monotonic are
#: fine: they never produce a portable value, only elapsed intervals).
_WALL_CLOCK = {
    ("time", "time"), ("time", "time_ns"),
    ("datetime.datetime", "now"), ("datetime.datetime", "utcnow"),
    ("datetime.datetime", "today"), ("datetime.date", "today"),
}


class UnseededEntropyRule(Rule):
    name = "unseeded-entropy"
    summary = "no unseeded RNG, uuid4, os.urandom, secrets, or wall-clock values"
    explanation = """\
Record-producing code must draw every stochastic value from a stream
seeded through ``repro.rng`` (``derive_seed`` / ``SeedSequence``), or
the output stops being reproducible across runs and machines.  Flagged:

- module-level ``random.*`` draws (the unseeded global RNG) and
  ``random.Random()`` constructed without a seed;
- ``uuid.uuid1`` / ``uuid.uuid4`` (MAC/entropy based; ``uuid3``/``uuid5``
  are namespace digests and fine);
- ``os.urandom`` and anything in ``secrets``;
- wall-clock reads (``time.time``, ``datetime.now`` ...).  Durations
  from ``time.perf_counter`` / ``monotonic`` are allowed: they feed
  throughput instrumentation and cannot masquerade as stable values.

``random.Random(derive_seed(...))`` — an explicitly seeded stream — is
the sanctioned pattern and is not flagged.
"""

    def applies_to(self, rel: str) -> bool:
        return in_record_scope(rel)

    def check(self, src: SourceFile) -> Iterator[Finding]:
        table = _imports(src)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node, table)
            if target is None:
                continue
            module, member = target
            message = None
            if module == "random" and member in _GLOBAL_RANDOM_FNS:
                message = (
                    f"random.{member}() draws from the unseeded global RNG; "
                    "use a stream from repro.rng (SeedSequence/derive_seed)"
                )
            elif (
                (module, member) == ("random", "Random")
                and not node.args
                and not node.keywords
            ):
                message = (
                    "random.Random() without a seed is entropy-seeded; pass "
                    "a derive_seed(...) value"
                )
            elif module == "uuid" and member in {"uuid1", "uuid4"}:
                message = (
                    f"uuid.{member}() is entropy/MAC derived; derive ids "
                    "from the seed tree (or uuid5 over a stable name)"
                )
            elif (module, member) == ("os", "urandom"):
                message = (
                    "os.urandom() is pure entropy; derive bytes from "
                    "repro.rng instead"
                )
            elif module == "secrets":
                message = (
                    f"secrets.{member}() is cryptographic entropy; "
                    "record-producing code must stay deterministic"
                )
            elif (module, member) in _WALL_CLOCK or (
                module.endswith(("datetime", "date")) and member in {"now", "utcnow"}
            ):
                message = (
                    f"{module.rsplit('.', 1)[-1]}.{member}() reads the wall "
                    "clock; thread timestamps through the run configuration "
                    "instead (perf_counter durations are fine)"
                )
            if message is not None:
                yield src.finding(self.name, node, message)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


class SetIterationRule(Rule):
    name = "set-iteration"
    summary = "never iterate a bare set toward output; sort it first"
    explanation = """\
Set iteration order depends on element hashes — for strings, on the
per-process hash salt — so a loop, comprehension, ``list()``/``tuple()``
conversion, or ``join`` over a bare set can order output differently in
every worker process.  Wrap the set in ``sorted(...)`` (the repo-wide
idiom; see e.g. ``compare_rounds``) before the order can matter.

Only syntactic set expressions (literals, ``set(...)``/``frozenset(...)``
calls, set comprehensions) are flagged; membership tests and unordered
reductions (``len``, ``sum``, ``min``, ``max``, ``any``, ``all``) over
sets are fine.
"""

    def applies_to(self, rel: str) -> bool:
        return in_record_scope(rel)

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            iterables = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                iterables.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                func = node.func
                order_sensitive = (
                    isinstance(func, ast.Name) and func.id in {"list", "tuple"}
                ) or (isinstance(func, ast.Attribute) and func.attr == "join")
                if order_sensitive:
                    iterables.extend(node.args[:1])
            for iterable in iterables:
                if _is_set_expr(iterable):
                    yield src.finding(
                        self.name,
                        iterable,
                        "iteration order over a bare set follows the salted "
                        "hash; wrap it in sorted(...) before it can reach "
                        "output",
                    )
