"""Locking discipline: lock-guarded state is guarded *everywhere*.

Modeled on the PR 4 locked-``Counter`` fix in ``adblock.FilterEngine``:
``hit_counts`` is mutated under ``_hits_lock`` — so a later edit that
bumps it without the lock reintroduces the lost-update bug the fix
killed.  The rule infers, per class, which attributes the author
considers lock-guarded (any attribute mutated at least once inside
``with self.<lock>:``) and flags every mutation of those attributes
that happens outside a lock.

Conventions honoured: ``__init__``/``__post_init__`` run before the
object is shared and are exempt; methods named ``*_locked`` assert the
caller holds the lock (the ``_emit_locked`` pattern) and are exempt;
rebinding (``self.x = ...``) is construction, not mutation, and is not
tracked.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from tools.reprolint.core import Finding, Rule, SourceFile

#: Modules on executor worker code paths: classes here are mutated from
#: crawl-engine worker threads, so inconsistent guarding is a data race.
WORKER_SCOPES: Tuple[str, ...] = (
    "src/repro/measure/",
    "src/repro/adblock/",
    "src/repro/soup/",
    "src/repro/netsim/",
    "src/repro/resilience/",
    "src/repro/lru.py",
)

#: Receiver methods that mutate their object in place.
_MUTATORS = {
    "append", "appendleft", "extend", "insert", "remove", "pop", "popitem",
    "popleft", "clear", "add", "discard", "update", "setdefault", "sort",
    "reverse", "increment",
}

_EXEMPT_METHODS = ("__init__", "__post_init__")


def _lock_ctor(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    return name in {"Lock", "RLock"}


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.<attr>...`` -> ``attr`` (first hop off self), else None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        parent = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(parent, ast.Name)
            and parent.id == "self"
        ):
            return node.attr
        node = parent
    return None


def _mutations(node: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(attr, node)`` for every in-place mutation of a self attr."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.AugAssign):
            attr = _self_attr(sub.target)
            if attr is not None:
                yield attr, sub
        elif isinstance(sub, ast.Assign):
            for target in sub.targets:
                if isinstance(target, ast.Subscript):
                    attr = _self_attr(target)
                    if attr is not None:
                        yield attr, sub
        elif isinstance(sub, ast.Delete):
            for target in sub.targets:
                if isinstance(target, ast.Subscript):
                    attr = _self_attr(target)
                    if attr is not None:
                        yield attr, sub
        elif isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                attr = _self_attr(func.value)
                if attr is not None:
                    yield attr, sub


def _with_lock_bodies(
    method: ast.AST, lock_attrs: Set[str]
) -> Iterator[List[ast.stmt]]:
    for sub in ast.walk(method):
        if not isinstance(sub, (ast.With, ast.AsyncWith)):
            continue
        for item in sub.items:
            attr = _self_attr(item.context_expr)
            if attr in lock_attrs:
                yield sub.body
                break


class UnlockedMutationRule(Rule):
    name = "unlocked-mutation"
    summary = "attributes mutated under a lock must always be mutated under it"
    explanation = """\
In a class that owns a ``threading.Lock``/``RLock``, the rule infers
the guarded attribute set — every instance attribute mutated in place
(``+=``, ``[k] = v``, ``.append``/``.update``/``.setdefault``/...)
inside a ``with self.<lock>:`` block anywhere in the class — and then
requires every other in-place mutation of those attributes to happen
under a lock too.  One unguarded ``self.hit_counts[k] += 1`` next to a
guarded one is exactly the lost-update race the PR 4 locked-Counter fix
removed; executor worker threads make it a real corruption, not a
theoretical one.

Exempt: ``__init__``/``__post_init__`` (pre-sharing construction),
methods named ``*_locked`` (the documented held-lock convention — the
caller takes the lock), and plain rebinding (``self.x = []`` resets a
reference; it does not race with in-place mutation the way two
read-modify-writes do).  Scope: worker-path modules
(``measure/``, ``adblock/``, ``soup/``, ``netsim/``, ``lru.py``).
"""

    def applies_to(self, rel: str) -> bool:
        return rel.startswith(WORKER_SCOPES)

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(src, node)

    def _check_class(
        self, src: SourceFile, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        lock_attrs: Set[str] = set()
        for sub in ast.walk(cls):
            if isinstance(sub, ast.Assign) and _lock_ctor(sub.value):
                for target in sub.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        lock_attrs.add(attr)
                    elif isinstance(target, ast.Name):
                        lock_attrs.add(target.id)  # class-level lock
            elif isinstance(sub, ast.AnnAssign) and _lock_ctor(sub.value):
                attr = _self_attr(sub.target)
                if attr is not None:
                    lock_attrs.add(attr)
                elif isinstance(sub.target, ast.Name):
                    lock_attrs.add(sub.target.id)
        if not lock_attrs:
            return

        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

        guarded: Set[str] = set()
        for method in methods:
            for body in _with_lock_bodies(method, lock_attrs):
                for stmt in body:
                    for attr, _ in _mutations(stmt):
                        guarded.add(attr)
        guarded -= lock_attrs
        if not guarded:
            return

        for method in methods:
            if method.name in _EXEMPT_METHODS or method.name.endswith("_locked"):
                continue
            locked_nodes: Set[int] = set()
            for body in _with_lock_bodies(method, lock_attrs):
                for stmt in body:
                    for sub in ast.walk(stmt):
                        locked_nodes.add(id(sub))
            for attr, node in _mutations(method):
                if attr in guarded and id(node) not in locked_nodes:
                    yield src.finding(
                        self.name,
                        node,
                        f"{cls.name}.{attr} is lock-guarded elsewhere in the "
                        "class but mutated here without the lock; wrap this "
                        "in the guarding 'with' (or rename the method "
                        "*_locked if the caller holds it)",
                    )
