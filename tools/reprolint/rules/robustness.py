"""Robustness discipline: faults may be caught, never silently eaten.

The resilience plane's whole contract is that every fault leaves a
trace — a retry, a degraded record carrying the error name, a breaker
transition.  One ``except Exception: pass`` on an engine or worker
code path voids that contract invisibly: the task "succeeds", the
differential oracle can no longer tell a recovered run from a corrupted
one, and the failure-taxonomy table under-counts.  The rule flags
broad handlers (``except Exception``/``BaseException``/bare) in
worker-path modules unless the handler visibly propagates the fault:
re-raising, or referencing the bound exception so its identity can
reach a record or log.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from tools.reprolint.core import Finding, Rule, SourceFile

#: Modules on the engine/worker fault path: a swallowed exception here
#: silently drops a task or corrupts the differential oracle.
ENGINE_SCOPES: Tuple[str, ...] = (
    "src/repro/measure/",
    "src/repro/resilience/",
    "src/repro/netsim/",
    "src/repro/browser/",
)

_BROAD = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        name = node.attr if isinstance(node, ast.Attribute) else (
            node.id if isinstance(node, ast.Name) else ""
        )
        if name in _BROAD:
            return True
    return False


def _propagates(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or uses the caught exception."""
    for sub in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(sub, ast.Raise):
            return True
        if (
            handler.name is not None
            and isinstance(sub, ast.Name)
            and sub.id == handler.name
        ):
            return True
    return False


class BroadExceptRule(Rule):
    name = "broad-except"
    summary = "worker-path handlers must not swallow faults traceless"
    explanation = """\
On engine and worker code paths (``measure/``, ``resilience/``,
``netsim/``, ``browser/``) a broad handler — ``except Exception``,
``except BaseException``, or a bare ``except:`` — must either re-raise
or reference the exception it bound (``except Exception as exc: ...``
feeding ``exc`` into a record, event, or log).  A handler that does
neither converts an arbitrary fault into silent success: the task is
lost from the failure taxonomy, retries and breakers never see it, and
the chaos differential oracle reports byte-identity for a run that in
fact broke.  Catch the narrow error type, or carry the fault into the
degraded-record path (`repro.resilience.degrade`).
"""

    def applies_to(self, rel: str) -> bool:
        return rel.startswith(ENGINE_SCOPES)

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and not _propagates(node):
                what = (
                    "bare except" if node.type is None
                    else "except Exception"
                )
                yield src.finding(
                    self.name,
                    node,
                    f"{what} swallows the fault without re-raising or "
                    "recording it; catch the narrow type or route the "
                    "error into the degraded-record taxonomy",
                )
