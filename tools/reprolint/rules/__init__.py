"""The reprolint rule registry."""

from typing import Dict, List

from tools.reprolint.core import Rule
from tools.reprolint.rules.determinism import (
    SaltedHashRule,
    SetIterationRule,
    UnseededEntropyRule,
)
from tools.reprolint.rules.locking import UnlockedMutationRule
from tools.reprolint.rules.pickle_safety import BundlePickleSafetyRule
from tools.reprolint.rules.robustness import BroadExceptRule
from tools.reprolint.rules.streaming import MaterializedRecordsRule


def all_rules() -> List[Rule]:
    """One fresh instance of every registered rule."""
    return [
        SaltedHashRule(),
        UnseededEntropyRule(),
        SetIterationRule(),
        MaterializedRecordsRule(),
        BundlePickleSafetyRule(),
        UnlockedMutationRule(),
        BroadExceptRule(),
    ]


def rules_by_name() -> Dict[str, Rule]:
    return {rule.name: rule for rule in all_rules()}
