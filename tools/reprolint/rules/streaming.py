"""Streaming discipline: the analysis and merge paths stay single-pass.

Absorbs ``tools/check_streaming_analysis.py`` (the original
``load_records``-in-``analysis/`` ban) and generalises it: the flat-RSS
gates (``large_world_smoke.py``, ``BENCH_streaming.json`` floors)
assume no layer between a spool and an aggregate ever materialises a
record file, so any whole-file read in those paths is a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import Finding, Rule, SourceFile

#: Strict scope: no load_records imports/references at all, and no
#: whole-file json.load — every aggregation here is one pass by design.
ANALYSIS_SCOPE = "src/repro/analysis/"

#: Merge/reconcile paths plus the perf gates: materialising *calls*
#: are banned, but naming the API (re-exports, docstrings) is fine.
MERGE_SCOPES = (
    "src/repro/measure/storage.py",
    "src/repro/measure/engine.py",
    "src/repro/measure/longitudinal.py",
    "benchmarks/",
    "tools/",
)

BANNED_NAME = "load_records"

#: Streaming iterators whose wholesale materialisation defeats them.
STREAM_ITERATORS = {"iter_records", "iter_jsonl", "iter_merged_jsonl"}


def _callee_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


class MaterializedRecordsRule(Rule):
    name = "materialized-records"
    summary = "no whole-file record materialisation in streaming paths"
    explanation = """\
The one-pass pipeline's memory model (peak RSS independent of record
count) dies the moment a streaming path buffers a whole file.  Flagged
in ``src/repro/analysis/`` (strictest — importing or referencing
``load_records`` at all), and as *calls* in the merge/reconcile modules
(``measure/storage.py``, ``measure/engine.py``,
``measure/longitudinal.py``) plus ``benchmarks/`` and ``tools/``:

- ``load_records(...)`` — the one deliberately materialising API;
- ``list(iter_records(...))`` / ``list(iter_jsonl(...))`` /
  ``list(iter_merged_jsonl(...))`` and their ``tuple`` forms —
  load_records by another spelling;
- ``handle.readlines()`` — a whole file as a list of lines;
- ``json.load(...)`` (analysis scope only) — a whole document at once;
  small config/benchmark JSON elsewhere is legitimate.

Stream with ``iter_records`` / ``iter_jsonl`` and fold into the online
aggregators in ``analysis/stats.py`` instead.
"""

    def applies_to(self, rel: str) -> bool:
        return rel.startswith(ANALYSIS_SCOPE) or rel.startswith(MERGE_SCOPES)

    def check(self, src: SourceFile) -> Iterator[Finding]:
        strict = src.rel.startswith(ANALYSIS_SCOPE)
        for node in ast.walk(src.tree):
            if strict and isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == BANNED_NAME:
                        yield src.finding(
                            self.name,
                            node,
                            f"imports {BANNED_NAME} from {node.module}; the "
                            "analysis layer is single-pass — stream with "
                            "iter_records instead",
                        )
            elif strict and isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[-1] == BANNED_NAME:
                        yield src.finding(
                            self.name,
                            node,
                            f"imports {alias.name}; the analysis layer is "
                            "single-pass — stream with iter_records instead",
                        )
            elif strict and isinstance(node, ast.Attribute):
                if node.attr == BANNED_NAME:
                    yield src.finding(
                        self.name,
                        node,
                        f"references .{BANNED_NAME}; the analysis layer is "
                        "single-pass — stream with iter_records instead",
                    )
            elif isinstance(node, ast.Call):
                callee = _callee_name(node)
                if callee == BANNED_NAME:
                    yield src.finding(
                        self.name,
                        node,
                        f"{BANNED_NAME}() materialises a whole record file; "
                        "stream with iter_records",
                    )
                elif callee in {"list", "tuple"} and node.args:
                    inner = node.args[0]
                    if (
                        isinstance(inner, ast.Call)
                        and _callee_name(inner) in STREAM_ITERATORS
                    ):
                        yield src.finding(
                            self.name,
                            node,
                            f"{callee}({_callee_name(inner)}(...)) buffers the "
                            "whole stream — this is load_records by another "
                            "name; keep it an iterator",
                        )
                elif callee == "readlines":
                    yield src.finding(
                        self.name,
                        node,
                        ".readlines() buffers the whole file; iterate the "
                        "handle line by line",
                    )
                elif (
                    strict
                    and callee == "load"
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "json"
                ):
                    yield src.finding(
                        self.name,
                        node,
                        "json.load() reads a whole document; analysis inputs "
                        "are JSONL — stream with iter_jsonl",
                    )
