"""Pickle-safety: the process-executor shard bundle must stay picklable.

The process backend ships each shard to a worker as a pickled bundle
(task tuples + id seeds) plus the run-constant shared dict installed by
the pool initializer (retry policy, detector instances).  A lambda,
local class, lock, or open handle smuggled into any type reachable from
that surface only explodes at pool start — or worse, only on the
process backend in CI.  This rule walks the reachable class graph
statically and flags the unpicklable member up front.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from tools.reprolint.core import Finding, ProjectRule, SourceFile

#: The bundle surface: the engine's bundle dataclasses plus the live
#: detector instances that travel in the worker-shared dict
#: (``CrawlEngine._run_process_shards``).
DEFAULT_ROOTS: Tuple[Tuple[str, str], ...] = (
    ("src/repro/measure/engine.py", "CrawlTask"),
    ("src/repro/measure/engine.py", "RetryPolicy"),
    ("src/repro/bannerclick/detect.py", "BannerClick"),
    ("src/repro/lang/detector.py", "LanguageDetector"),
    # Wire dataclasses cross the distributed executor's socket framing;
    # their payloads must stay as serialisable as bundle state itself.
    ("src/repro/distributed/wire.py", "WireBundle"),
    ("src/repro/distributed/wire.py", "WireResult"),
)

#: Constructors whose product cannot cross a process boundary.
_UNPICKLABLE_CTORS = {
    "Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore",
    "Barrier", "local", "open", "socket", "Popen",
}

#: Annotation type names that denote unpicklable members.
_UNPICKLABLE_TYPES = _UNPICKLABLE_CTORS | {
    "IO", "TextIO", "BinaryIO", "TextIOWrapper", "BufferedReader",
    "BufferedWriter", "FileIO",
}


@dataclass
class _ClassInfo:
    src: SourceFile
    node: ast.ClassDef


def _annotation_names(annotation: ast.AST) -> Set[str]:
    """Every identifier mentioned in a (possibly string) annotation."""
    names: Set[str] = set()
    stack: List[ast.AST] = [annotation]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                stack.append(ast.parse(node.value, mode="eval").body)
            except SyntaxError:
                continue
        elif isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
            stack.append(node.value)
        else:
            stack.extend(ast.iter_child_nodes(node))
    return names


def _ctor_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
    return None


class BundlePickleSafetyRule(ProjectRule):
    name = "bundle-pickle-safety"
    summary = "types reachable from the shard bundle carry no unpicklable members"
    explanation = """\
Statically walks the class graph reachable from the process-executor
bundle surface — the engine's bundle dataclasses (``CrawlTask``,
``RetryPolicy``) and the detector types shipped in the worker-shared
dict (``BannerClick``, ``LanguageDetector``) — following the type
annotations of dataclass fields and ``__init__`` assignments across the
repo.  In every reachable class it flags members a worker process could
not unpickle:

- lambda defaults (``cb: Callable = lambda: ...`` or
  ``field(default=lambda ...)``) and ``field(default_factory=<lambda or
  Lock>)``;
- instance attributes assigned a lambda, a function/class defined
  locally inside ``__init__``, a ``threading`` primitive, an ``open()``
  handle, a socket, or a subprocess handle;
- annotations naming lock or file-handle types.

Per-instance dict/list factories (``field(default_factory=dict)``) and
module-level functions are fine — they pickle by value or reference.
If a worker-side type genuinely needs a lock, keep it out of the
bundle graph and rebuild it in the worker (see ``_worker_world``).
"""

    def __init__(
        self, roots: Sequence[Tuple[str, str]] = DEFAULT_ROOTS
    ) -> None:
        self.roots = tuple(roots)

    # -- class graph -------------------------------------------------
    def _index(
        self, sources: Sequence[SourceFile]
    ) -> Tuple[Dict[Tuple[str, str], _ClassInfo], Dict[str, List[_ClassInfo]]]:
        by_file: Dict[Tuple[str, str], _ClassInfo] = {}
        by_name: Dict[str, List[_ClassInfo]] = {}
        for src in sources:
            for node in ast.walk(src.tree):
                if isinstance(node, ast.ClassDef):
                    info = _ClassInfo(src, node)
                    by_file[(src.rel, node.name)] = info
                    by_name.setdefault(node.name, []).append(info)
        return by_file, by_name

    def check_project(self, sources: Sequence[SourceFile]) -> Iterator[Finding]:
        by_file, by_name = self._index(sources)
        queue: List[_ClassInfo] = []
        seen: Set[Tuple[str, str]] = set()

        def enqueue_name(name: str, origin: SourceFile) -> None:
            info = by_file.get((origin.rel, name))
            if info is None:
                matches = by_name.get(name, [])
                if len(matches) != 1:
                    return  # unknown or ambiguous: stay conservative
                info = matches[0]
            key = (info.src.rel, info.node.name)
            if key not in seen:
                seen.add(key)
                queue.append(info)

        for rel, class_name in self.roots:
            info = by_file.get((rel, class_name))
            if info is not None and (rel, class_name) not in seen:
                seen.add((rel, class_name))
                queue.append(info)

        while queue:
            info = queue.pop()
            yield from self._check_class(info, enqueue_name)

    # -- per-class checks --------------------------------------------
    def _check_class(self, info: _ClassInfo, enqueue_name) -> Iterator[Finding]:
        src, node = info.src, info.node
        label = f"{node.name} (reachable from the shard bundle)"
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign):
                for name in _annotation_names(stmt.annotation):
                    if name in _UNPICKLABLE_TYPES:
                        yield src.finding(
                            self.name,
                            stmt,
                            f"{label}: field annotated {name} cannot cross "
                            "the process boundary",
                        )
                    else:
                        enqueue_name(name, src)
                if stmt.value is not None:
                    yield from self._check_default(src, label, stmt.value, enqueue_name)
            elif isinstance(stmt, ast.Assign):
                yield from self._check_default(src, label, stmt.value, enqueue_name)
            elif isinstance(stmt, ast.FunctionDef) and stmt.name in (
                "__init__",
                "__post_init__",
            ):
                yield from self._check_init(src, label, stmt, enqueue_name)

    def _check_default(
        self, src: SourceFile, label: str, value: ast.AST, enqueue_name
    ) -> Iterator[Finding]:
        if isinstance(value, ast.Lambda):
            yield src.finding(
                self.name,
                value,
                f"{label}: lambda default makes instances unpicklable; use a "
                "module-level function",
            )
            return
        ctor = _ctor_name(value)
        if ctor in _UNPICKLABLE_CTORS:
            yield src.finding(
                self.name,
                value,
                f"{label}: {ctor}(...) default cannot cross the process "
                "boundary",
            )
        if isinstance(value, ast.Call) and ctor == "field":
            for keyword in value.keywords:
                if keyword.arg not in ("default", "default_factory"):
                    continue
                if isinstance(keyword.value, ast.Lambda):
                    if keyword.arg == "default":
                        yield src.finding(
                            self.name,
                            keyword.value,
                            f"{label}: field(default=<lambda>) makes every "
                            "instance unpicklable; use a module-level function",
                        )
                    continue  # default_factory lambdas build picklable values
                inner = _ctor_name(keyword.value)
                if inner in _UNPICKLABLE_CTORS:
                    yield src.finding(
                        self.name,
                        keyword.value,
                        f"{label}: field({keyword.arg}={inner}...) plants an "
                        "unpicklable member in every instance",
                    )
                if keyword.arg == "default_factory" and isinstance(
                    keyword.value, ast.Name
                ):
                    if keyword.value.id in _UNPICKLABLE_CTORS:
                        yield src.finding(
                            self.name,
                            keyword.value,
                            f"{label}: field(default_factory="
                            f"{keyword.value.id}) plants an unpicklable "
                            "member in every instance",
                        )
                    else:
                        enqueue_name(keyword.value.id, src)

    def _check_init(
        self, src: SourceFile, label: str, init: ast.FunctionDef, enqueue_name
    ) -> Iterator[Finding]:
        for arg in list(init.args.args) + list(init.args.kwonlyargs):
            if arg.annotation is not None:
                for name in _annotation_names(arg.annotation):
                    if name in _UNPICKLABLE_TYPES:
                        yield src.finding(
                            self.name,
                            arg,
                            f"{label}: __init__ accepts a {name}; it would "
                            "land in an instance attribute and break pickling",
                        )
                    else:
                        enqueue_name(name, src)
        local_defs = {
            stmt.name
            for stmt in init.body
            if isinstance(stmt, (ast.FunctionDef, ast.ClassDef))
        }
        for stmt in ast.walk(init):
            if not isinstance(stmt, ast.Assign):
                continue
            targets_self = any(
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                for target in stmt.targets
            )
            if not targets_self:
                continue
            value = stmt.value
            if isinstance(value, ast.Lambda):
                yield src.finding(
                    self.name,
                    value,
                    f"{label}: instance attribute holds a lambda; workers "
                    "cannot unpickle it — use a module-level function",
                )
            elif isinstance(value, ast.Name) and value.id in local_defs:
                yield src.finding(
                    self.name,
                    value,
                    f"{label}: instance attribute holds a function/class "
                    "defined locally in __init__; move it to module level",
                )
            else:
                ctor = _ctor_name(value)
                if ctor in _UNPICKLABLE_CTORS:
                    yield src.finding(
                        self.name,
                        value,
                        f"{label}: self.<attr> = {ctor}(...) cannot cross "
                        "the process boundary; rebuild it worker-side "
                        "instead of shipping it",
                    )
