"""The reprolint framework: sources, findings, pragmas, and the baseline.

A :class:`SourceFile` is one parsed module; rules yield
:class:`Finding` objects against it.  :func:`lint_sources` runs a rule
set over a file set and applies the two suppression layers:

- **inline pragmas** — ``# reprolint: disable=RULE[,RULE] -- why`` on
  the finding's line.  The justification after ``--`` is mandatory: a
  pragma without one suppresses nothing and is itself reported
  (``bad-pragma``); a pragma that suppresses nothing is reported too
  (``unused-suppression``), so stale suppressions cannot rot in place.
- **the baseline** — a checked-in JSON file of grandfathered findings,
  matched by ``(rule, path, snippet)`` so entries survive line drift.
  Every entry must carry a non-empty ``reason``; unmatched entries are
  reported as stale (warning, not failure) so the file shrinks as debt
  is paid down.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Repo root (tools/reprolint/core.py -> tools/reprolint -> tools -> root).
REPO_ROOT = Path(__file__).resolve().parents[2]

#: Pragma syntax (in a real comment): ``reprolint: disable=rule-a,rule-b -- justification``
_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\-]+)"
    r"(?:\s+--\s*(?P<why>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative posix path (the scoping/reporting path)
    line: int
    col: int
    message: str
    snippet: str = ""  # stripped source line, the baseline fingerprint

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def render_github(self) -> str:
        return (
            f"::error file={self.path},line={self.line},col={self.col},"
            f"title=reprolint[{self.rule}]::{self.message}"
        )


@dataclass
class Pragma:
    """One inline suppression comment."""

    line: int
    rules: Set[str]
    justification: Optional[str]
    used: Set[str] = field(default_factory=set)


class SourceFile:
    """One parsed python module plus its suppression pragmas.

    *rel* is the path rules scope on — repo-relative for real files,
    and overridable so the test corpus can present a fixture as living
    anywhere in the tree.
    """

    def __init__(self, text: str, rel: str, path: Optional[Path] = None) -> None:
        self.text = text
        self.rel = rel.replace("\\", "/")
        self.path = path
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=self.rel)
        self.pragmas: Dict[int, Pragma] = {}
        # Real comment tokens only: pragma examples inside docstrings
        # must not count as suppressions.
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
        except tokenize.TokenizeError:  # pragma: no cover - ast.parse caught it
            tokens = []
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if match is None:
                continue
            number = token.start[0]
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            pragma = Pragma(
                line=number, rules=rules, justification=match.group("why")
            )
            # A trailing pragma guards its own line; a standalone
            # comment line guards the next line (the convention used
            # when the offending line is too long to annotate inline).
            standalone = not self.lines[number - 1][: token.start[1]].strip()
            self.pragmas[number + 1 if standalone else number] = pragma

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule=rule,
            path=self.rel,
            line=line,
            col=col,
            message=message,
            snippet=self.snippet(line),
        )


class Rule:
    """A per-file rule: scoped by path, checked against one AST."""

    name: str = ""
    summary: str = ""
    explanation: str = ""

    def applies_to(self, rel: str) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def check(self, src: SourceFile) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule needing the whole file set (cross-module type walks)."""

    def applies_to(self, rel: str) -> bool:
        return False

    def check(self, src: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, sources: Sequence[SourceFile]
    ) -> Iterator[Finding]:  # pragma: no cover - interface
        raise NotImplementedError


class BaselineError(ValueError):
    """The baseline file is malformed or an entry lacks a justification."""


class Baseline:
    """The checked-in set of grandfathered findings.

    Matching is by ``(rule, path, snippet)`` with per-key counts, so an
    entry keeps matching when surrounding code shifts lines but stops
    matching — and is reported stale — the moment the offending line
    changes or disappears.
    """

    def __init__(self, entries: Optional[List[dict]] = None) -> None:
        self.entries = list(entries or [])
        self._budget: Dict[Tuple[str, str, str], int] = {}
        for entry in self.entries:
            for key in ("rule", "path", "snippet"):
                if not isinstance(entry.get(key), str) or not entry[key]:
                    raise BaselineError(
                        f"baseline entry missing a non-empty {key!r}: {entry!r}"
                    )
            reason = entry.get("reason")
            if not isinstance(reason, str) or not reason.strip():
                raise BaselineError(
                    "baseline entries must carry a non-empty 'reason' "
                    f"justifying the grandfathered finding: {entry!r}"
                )
            key = (entry["rule"], entry["path"], entry["snippet"])
            self._budget[key] = self._budget.get(key, 0) + int(entry.get("count", 1))
        self._spent: Dict[Tuple[str, str, str], int] = {}

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: not valid JSON ({exc})") from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise BaselineError(f"{path}: expected an object with an 'entries' list")
        return cls(payload["entries"])

    def absorbs(self, finding: Finding) -> bool:
        key = finding.key()
        if self._spent.get(key, 0) < self._budget.get(key, 0):
            self._spent[key] = self._spent.get(key, 0) + 1
            return True
        return False

    def stale_entries(self) -> List[dict]:
        """Entries that matched nothing in the last lint run."""
        seen: Set[Tuple[str, str, str]] = set()
        stale = []
        for entry in self.entries:
            key = (entry["rule"], entry["path"], entry["snippet"])
            if self._spent.get(key, 0) == 0 and key not in seen:
                seen.add(key)
                stale.append(entry)
        return stale

    @staticmethod
    def serialize(findings: Iterable[Finding]) -> dict:
        """A baseline payload grandfathering *findings* (reasons to fill in)."""
        counts: Dict[Tuple[str, str, str], int] = {}
        order: List[Tuple[str, str, str]] = []
        for finding in findings:
            key = finding.key()
            if key not in counts:
                order.append(key)
            counts[key] = counts.get(key, 0) + 1
        return {
            "version": 1,
            "entries": [
                {
                    "rule": rule,
                    "path": path,
                    "snippet": snippet,
                    "count": counts[(rule, path, snippet)],
                    "reason": "grandfathered - replace with a real justification",
                }
                for rule, path, snippet in sorted(order)
            ],
        }


def load_sources(paths: Iterable[Path], root: Path = REPO_ROOT) -> List[SourceFile]:
    """Collect ``SourceFile``s for every ``*.py`` under *paths*."""
    seen: Set[Path] = set()
    files: List[Path] = []
    for path in paths:
        path = path if path.is_absolute() else root / path
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            files.append(resolved)
    sources = []
    for file in files:
        try:
            rel = file.relative_to(root).as_posix()
        except ValueError:
            rel = file.as_posix()
        sources.append(SourceFile(file.read_text(encoding="utf-8"), rel, path=file))
    return sources


def lint_sources(
    sources: Sequence[SourceFile],
    rules: Sequence[Rule],
    baseline: Optional[Baseline] = None,
) -> List[Finding]:
    """Run *rules* over *sources*; return the surviving findings.

    Order of layers: raw findings -> pragma suppression (justified
    pragmas only) -> pragma meta-findings (``bad-pragma`` /
    ``unused-suppression``) -> baseline absorption.
    """
    raw: List[Finding] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(sources))
        else:
            for src in sources:
                if rule.applies_to(src.rel):
                    raw.extend(rule.check(src))

    by_rel: Dict[str, SourceFile] = {src.rel: src for src in sources}
    kept: List[Finding] = []
    for finding in raw:
        src = by_rel.get(finding.path)
        pragma = src.pragmas.get(finding.line) if src is not None else None
        if pragma is not None and (
            finding.rule in pragma.rules or "all" in pragma.rules
        ):
            pragma.used.add(finding.rule if finding.rule in pragma.rules else "all")
            if pragma.justification:
                continue  # justified suppression
            # An unjustified pragma suppresses nothing; the finding
            # stands and the pragma is reported below.
        kept.append(finding)

    for src in sources:
        for pragma in src.pragmas.values():
            if not pragma.justification:
                kept.append(
                    Finding(
                        rule="bad-pragma",
                        path=src.rel,
                        line=pragma.line,
                        col=1,
                        message=(
                            "suppression pragma lacks a justification: write "
                            "'# reprolint: disable=RULE -- why this is safe'"
                        ),
                        snippet=src.snippet(pragma.line),
                    )
                )
            else:
                # A pragma is only "unused" for rules that actually ran
                # (a --select subset must not flag other rules' pragmas).
                executed = {rule.name for rule in rules} | {"all"}
                for rule_name in sorted(
                    (pragma.rules & executed) - pragma.used
                ):
                    kept.append(
                        Finding(
                            rule="unused-suppression",
                            path=src.rel,
                            line=pragma.line,
                            col=1,
                            message=(
                                f"pragma disables {rule_name!r} but nothing on "
                                "this line triggers it; remove the stale "
                                "suppression"
                            ),
                            snippet=src.snippet(pragma.line),
                        )
                    )

    if baseline is not None:
        kept = [finding for finding in kept if not baseline.absorbs(finding)]
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept
