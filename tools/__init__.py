"""Repo tooling (reprolint and friends); a package so ``python -m tools.reprolint`` works."""
