#!/usr/bin/env python3
"""Shim: folded into reprolint as the ``materialized-records`` rule.

Kept so old invocations (docs, muscle memory) keep working; the real
check now lives in ``tools/reprolint`` and CI runs the full suite via
``python -m tools.reprolint``.  Exit codes are unchanged (0 clean,
1 findings, 2 usage error).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from tools.reprolint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["--select", "materialized-records", "src/repro"]))
