#!/usr/bin/env python3
"""Lint: the analysis layer must never materialise a record file.

Every aggregation under ``src/repro/analysis/`` is single-pass by
design (see the streaming analysis layer); the one API that pulls a
whole JSONL file into a list is ``load_records``.  This check fails if
any module under the analysis package imports it — or references it as
an attribute (``storage.load_records``) — so a convenience refactor
cannot quietly reintroduce an O(records) buffer into a path the
flat-memory gates assume is streaming.  Use ``iter_records`` /
``iter_jsonl`` there instead.

Run from the repo root (CI does)::

    python tools/check_streaming_analysis.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ANALYSIS = REPO / "src" / "repro" / "analysis"
BANNED = "load_records"


def violations_in(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found = []
    relative = path.relative_to(REPO)
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == BANNED:
                    found.append(
                        f"{relative}:{node.lineno}: imports {BANNED} "
                        f"from {node.module}"
                    )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[-1] == BANNED:
                    found.append(
                        f"{relative}:{node.lineno}: imports {alias.name}"
                    )
        elif isinstance(node, ast.Attribute) and node.attr == BANNED:
            found.append(
                f"{relative}:{node.lineno}: references .{BANNED}"
            )
    return found


def main() -> int:
    if not ANALYSIS.is_dir():
        print(f"::error::{ANALYSIS} does not exist", file=sys.stderr)
        return 2
    failures = []
    for path in sorted(ANALYSIS.rglob("*.py")):
        failures.extend(violations_in(path))
    if failures:
        for failure in failures:
            print(f"::error::{failure}: the analysis layer is "
                  "single-pass — stream with iter_records instead",
                  file=sys.stderr)
        return 1
    count = len(list(ANALYSIS.rglob('*.py')))
    print(f"OK: no {BANNED} use under src/repro/analysis/ "
          f"({count} modules checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
