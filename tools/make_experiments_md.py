#!/usr/bin/env python3
"""Generate EXPERIMENTS.md from the benchmark artefacts.

Reads ``benchmarks/output/*.txt`` (written by a full-scale
``pytest benchmarks/ --benchmark-only`` run) and emits the
paper-vs-measured record for every table and figure.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUTPUT = REPO / "benchmarks" / "output"

#: artefact file -> (heading, paper reference, paper-value summary)
SECTIONS = [
    ("table1", "Table 1 — cookiewalls per vantage point",
     "Paper: DE 280 / SE 276 / USE 197 / USW 199 / BR 196 / ZA 199 / "
     "IN 192 / AU 190; DE toplist 259, ccTLD 233, language 252."),
    ("landscape", "§4.1 — landscape headline statistics",
     "Paper: 280 unique walls (0.6% of 45,222), Germany 2.9% top-10k / "
     "8.5% top-1k, 1.7% country-wise top-1k; embedding 76 shadow / "
     "132 iframe / 72 main."),
    ("accuracy", "§3 — detection accuracy",
     "Paper: 285 detected, 280 true => precision 98.2%; 1000-site random "
     "audit: 6/6 walls found, precision/recall 100%."),
    ("fig1", "Figure 1 — categories of cookiewall websites",
     "Paper: News and Media >25%, Business 9%, IT 7%, long tail across "
     "13+ categories."),
    ("fig2", "Figure 2 — monthly subscription price distribution",
     "Paper: mode at 3 EUR (SMP partners 2.99 EUR), ~80% <= 3 EUR, "
     "~90% <= 4 EUR, a handful >= 9 EUR, .it cheapest."),
    ("fig3", "Figure 3 — category vs price",
     "Paper: no obvious relationship between category and price."),
    ("fig4", "Figure 4 — cookies: regular banners vs cookiewalls",
     "Paper medians (5-visit averages): regular 15 FP / 6.8 TP / 1 "
     "tracking; walls 19 / 50.4 / 43 => 6.4x TP, 42x tracking."),
    ("fig5", "Figure 5 — contentpass: accept vs subscription",
     "Paper medians: accept 13 FP / 23.2 TP / 16 tracking; subscription "
     "6 / 4.4 / 0; some sites >100 tracking cookies on accept."),
    ("fig6", "Figure 6 — tracking cookies vs price",
     "Paper: no meaningful linear correlation."),
    ("ublock", "§4.5 — bypassing cookiewalls with uBlock Origin",
     "Paper: 196/280 (70%) suppressed; 2 broken sites (anti-adblock "
     "prompt; unscrollable page)."),
    ("smp", "§4.4 — Subscription Management Platforms",
     "Paper: contentpass 219 partners (76 on the toplists), freechoice "
     "167 (62); both 2.99 EUR/month."),
    ("baseline_comparison", "Extension — BannerClick vs Priv-Accept baseline",
     "Paper §2 positions BannerClick against earlier accept-clickers "
     "without shadow-DOM/iframe support or a cookiewall notion."),
]

ABLATIONS = [
    ("ablation_full", "full detector"),
    ("ablation_no_shadow", "shadow-DOM workaround disabled"),
    ("ablation_no_closed_shadow", "closed-shadow pierce disabled"),
    ("ablation_no_iframes", "iframe traversal disabled"),
    ("ablation_words_only", "subscription words only (no currency)"),
    ("ablation_currency_only", "currency patterns only (no words)"),
    ("ablation_repeats", "1-visit vs 5-visit measurement drift"),
]

HEADER = """# EXPERIMENTS — paper vs. measured

All artefacts below were regenerated on the **paper-scale synthetic
web** (45,222 reachable targets, seed 2023, `REPRO_BENCH_SCALE=1.0`)
by `pytest benchmarks/ --benchmark-only`.  Absolute numbers come from
the simulated substrate and are expected to differ from the authors'
2023 live-web testbed; what must hold — and does — is the *shape*:
who wins, by what rough factor, and where the distributions sit.
Raw artefacts live in `benchmarks/output/`.

Every value below is **measured** by the detection/measurement
pipeline (rendered pages, parsed DOMs, clicked buttons, counted
cookies); the generator's ground truth is used only where the paper
used humans (the manual verification step of §3).

Reading note: Table 1's Frankfurt/Stockholm rows report **raw
detections**, which include the five false positives the detector is
designed to produce (285 = 280 true walls + 5 bait sites => the §3
precision of 98.2%).  The paper's Table 1 lists the post-verification
280; every analysis below Table 1 likewise uses the verified set.
"""


def main() -> int:
    if not OUTPUT.exists():
        print("run `pytest benchmarks/ --benchmark-only` first", file=sys.stderr)
        return 1
    parts = [HEADER]
    for name, heading, paper in SECTIONS:
        path = OUTPUT / f"{name}.txt"
        parts.append(f"## {heading}\n")
        parts.append(f"*{paper}*\n")
        if path.exists():
            parts.append("```text")
            parts.append(path.read_text(encoding="utf-8").rstrip())
            parts.append("```\n")
        else:
            parts.append("_artefact missing — benchmark did not run_\n")
    parts.append("## Ablations — what each design choice contributes\n")
    parts.append(
        "*Recall of the cookiewall detector over the 280-wall population "
        "with individual capabilities disabled (paper §3 motivates shadow "
        "DOM and iframe support; the classifier has two halves).*\n"
    )
    parts.append("| Ablation | Result |")
    parts.append("|---|---|")
    for name, label in ABLATIONS:
        path = OUTPUT / f"{name}.txt"
        value = (
            path.read_text(encoding="utf-8").strip().replace("\n", "; ")
            if path.exists()
            else "missing"
        )
        parts.append(f"| {label} | {value} |")
    parts.append("")
    (REPO / "EXPERIMENTS.md").write_text(
        "\n".join(parts), encoding="utf-8"
    )
    print("wrote", REPO / "EXPERIMENTS.md")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
